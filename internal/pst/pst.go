// Package pst implements a Program Structure Tree MHP analysis — the
// §VI related-work approach ("the CCFG for MHP analysis can be
// comprehended into a tree structure (Program Structure Tree) where the
// begin task nodes can be attached as a child node to the immediately
// enclosing sync block", citing Agarwal et al.'s X10 MHP analysis).
//
// The tree models the finish/async fragment: sequential composition
// (Seq), begin tasks (Async) and sync blocks (Finish). Point-to-point
// synchronization (sync/single variables) is NOT modelled — that is
// precisely the paper's criticism: "None of the above mentioned
// algorithms handle point-to-point synchronization."
//
// Two leaves may happen in parallel iff, at their least common ancestor,
// the one in the earlier sibling subtree sits inside an async that
// escapes its sibling — an async with no finish between it and the
// sibling root. An outer-variable access is flagged as potentially
// dangerous when it may happen in parallel with the end of the
// variable's scope.
package pst

import (
	"fmt"
	"strings"

	"uafcheck/internal/ast"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

// Kind classifies a tree node.
type Kind int

const (
	// Seq is ordered sequential composition (a block).
	Seq Kind = iota
	// Async is a begin task body.
	Async
	// Finish is a sync block body: completion of every transitive async
	// inside is awaited at its end.
	Finish
	// Leaf is one statement-level event (an access or a scope end).
	Leaf
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Seq:
		return "seq"
	case Async:
		return "async"
	case Finish:
		return "finish"
	case Leaf:
		return "leaf"
	}
	return "?"
}

// Node is one PST node.
type Node struct {
	ID       int
	Kind     Kind
	Parent   *Node
	Children []*Node
	// Index is the node's position among its parent's children.
	Index int
	// Label describes leaves ("access x" / "scope-end x") and asyncs.
	Label string
}

// Access is an outer-variable access leaf.
type Access struct {
	Sym  *sym.Symbol
	Leaf *Node
	Sp   source.Span
	Task string
}

// Tree is the PST of one procedure.
type Tree struct {
	Root *Node
	// Accesses are the outer-variable accesses (lexical classification —
	// this baseline does not inline nested procedures).
	Accesses []*Access
	// ScopeEnd maps each accessed variable to its scope-end leaf.
	ScopeEnd map[*sym.Symbol]*Node
	nodes    []*Node
}

// Violation is one flagged access.
type Violation struct {
	Access *Access
}

func (t *Tree) newNode(kind Kind, parent *Node, label string) *Node {
	n := &Node{ID: len(t.nodes), Kind: kind, Parent: parent, Label: label}
	t.nodes = append(t.nodes, n)
	if parent != nil {
		n.Index = len(parent.Children)
		parent.Children = append(parent.Children, n)
	}
	return n
}

// Build constructs the PST of proc using resolved name information.
func Build(info *sym.Info, proc *ast.ProcDecl) *Tree {
	t := &Tree{ScopeEnd: make(map[*sym.Symbol]*Node)}
	t.Root = t.newNode(Seq, nil, "proc "+proc.Name.Name)
	b := &builder{t: t, info: info}
	b.block(t.Root, proc.Body.Stmts, info.ScopeFor(proc))
	return t
}

type builder struct {
	t    *Tree
	info *sym.Info
	// taskDepth tracks how many asyncs enclose the walk position.
	taskStack []string
}

func (b *builder) currentTask() string {
	if len(b.taskStack) == 0 {
		return "root"
	}
	return b.taskStack[len(b.taskStack)-1]
}

// block builds the Seq content of one statement list, then appends
// scope-end leaves for the variables declared in it.
func (b *builder) block(seq *Node, stmts []ast.Stmt, scope *sym.Scope) {
	var declared []*sym.Symbol
	for _, s := range stmts {
		declared = append(declared, b.stmt(seq, s)...)
	}
	for _, sm := range declared {
		leaf := b.t.newNode(Leaf, seq, "scope-end "+sm.Name)
		b.t.ScopeEnd[sm] = leaf
	}
	_ = scope
}

// stmt appends the statement's tree content to seq and returns symbols it
// declares (for scope-end placement).
func (b *builder) stmt(seq *Node, s ast.Stmt) []*sym.Symbol {
	switch x := s.(type) {
	case *ast.VarDecl:
		if x.Init != nil {
			b.exprAccesses(seq, x.Init)
		}
		if sm := b.info.Uses[x.Name]; sm != nil && !sm.IsSyncVar() && !sm.IsAtomic() {
			return []*sym.Symbol{sm}
		}
	case *ast.AssignStmt:
		b.exprAccesses(seq, x.Rhs)
		b.identAccess(seq, x.Lhs)
	case *ast.IncDecStmt:
		b.identAccess(seq, x.X)
	case *ast.ExprStmt:
		b.exprAccesses(seq, x.X)
	case *ast.CallStmt:
		b.exprAccesses(seq, x.X)
	case *ast.BeginStmt:
		async := b.t.newNode(Async, seq, x.Label)
		body := b.t.newNode(Seq, async, "")
		b.taskStack = append(b.taskStack, x.Label)
		b.block(body, x.Body.Stmts, b.info.ScopeFor(x))
		b.taskStack = b.taskStack[:len(b.taskStack)-1]
	case *ast.SyncStmt:
		finish := b.t.newNode(Finish, seq, "")
		body := b.t.newNode(Seq, finish, "")
		b.block(body, x.Body.Stmts, b.info.ScopeFor(x))
	case *ast.IfStmt:
		b.exprAccesses(seq, x.Cond)
		// Both arms are alternatives; for MHP purposes each arm is a
		// child Seq of a common Seq (conservative union of behaviours).
		arm := b.t.newNode(Seq, seq, "then")
		b.block(arm, x.Then.Stmts, nil)
		if x.Else != nil {
			arm2 := b.t.newNode(Seq, seq, "else")
			b.block(arm2, x.Else.Stmts, nil)
		}
	case *ast.WhileStmt:
		b.exprAccesses(seq, x.Cond)
		body := b.t.newNode(Seq, seq, "loop")
		b.block(body, x.Body.Stmts, nil)
	case *ast.ForStmt:
		body := b.t.newNode(Seq, seq, "loop")
		b.block(body, x.Body.Stmts, nil)
	case *ast.ReturnStmt:
		if x.Value != nil {
			b.exprAccesses(seq, x.Value)
		}
	case *ast.BlockStmt:
		inner := b.t.newNode(Seq, seq, "")
		b.block(inner, x.Stmts, nil)
	case *ast.ProcStmt:
		// Nested procedures are not inlined by this baseline.
	}
	return nil
}

func (b *builder) exprAccesses(seq *Node, e ast.Expr) {
	ast.Walk(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			b.identAccess(seq, id)
		}
		return true
	})
}

// identAccess adds a leaf when the identifier is an outer-variable access
// (declared outside the innermost enclosing begin, lexically).
func (b *builder) identAccess(seq *Node, id *ast.Ident) {
	sm := b.info.Uses[id]
	if sm == nil || sm.IsSyncVar() || sm.IsAtomic() ||
		sm.Kind == sym.KindProc || sm.Kind == sym.KindConfig {
		return
	}
	if len(b.taskStack) == 0 {
		return // accesses in the root strand are never outer
	}
	// Lexical task locality: the declaration is visible at the use, so
	// its begin-scope chain is a prefix of the use's chain; equal depth
	// means the variable is owned by the innermost current task.
	declBegin := sm.Scope.EnclosingBegin()
	if declBegin != nil && scopeDepth(declBegin) >= len(b.taskStack) {
		return
	}
	// One site per (variable, line), matching the paper analysis'
	// duplicate suppression, so baseline counts compare one-to-one.
	line := b.info.Module.File.Line(id.Sp.Start)
	for _, prev := range b.t.Accesses {
		if prev.Sym == sm && b.info.Module.File.Line(prev.Sp.Start) == line {
			return
		}
	}
	leaf := b.t.newNode(Leaf, seq, "access "+sm.Name)
	b.t.Accesses = append(b.t.Accesses, &Access{
		Sym: sm, Leaf: leaf, Sp: id.Sp, Task: b.currentTask(),
	})
}

// scopeDepth counts begin scopes from the scope up to the root.
func scopeDepth(sc *sym.Scope) int {
	n := 0
	for s := sc; s != nil; s = s.Parent {
		if s.Kind == sym.ScopeBegin {
			n++
		}
	}
	return n
}

// ---------------------------------------------------------------- MHP

// pathTo returns the ancestor chain from n (exclusive) up to anc
// (exclusive), or nil when anc is not an ancestor.
func childOf(anc, n *Node) *Node {
	for c := n; c != nil; c = c.Parent {
		if c.Parent == anc {
			return c
		}
	}
	return nil
}

// lca computes the least common ancestor.
func lca(a, b *Node) *Node {
	depth := func(n *Node) int {
		d := 0
		for c := n; c != nil; c = c.Parent {
			d++
		}
		return d
	}
	da, db := depth(a), depth(b)
	for da > db {
		a = a.Parent
		da--
	}
	for db > da {
		b = b.Parent
		db--
	}
	for a != b {
		a = a.Parent
		b = b.Parent
	}
	return a
}

// escapes reports whether leaf can keep running after the subtree rooted
// at stop completes its sequential position: true iff walking from leaf
// up to stop crosses an async with no finish above it (below stop).
func escapes(leaf, stop *Node) bool {
	escaped := false
	for n := leaf; n != nil && n != stop; n = n.Parent {
		switch n.Kind {
		case Async:
			escaped = true
		case Finish:
			escaped = false
		}
	}
	return escaped
}

// MHP reports whether the two leaves may execute in parallel.
func (t *Tree) MHP(a, b *Node) bool {
	if a == b {
		return false
	}
	l := lca(a, b)
	ca, cb := childOf(l, a), childOf(l, b)
	if ca == nil || cb == nil {
		// One is an ancestor of the other: an access inside an async
		// whose subtree contains the other leaf... for leaves this cannot
		// happen (leaves have no children).
		return false
	}
	switch l.Kind {
	case Seq:
		// Ordered siblings: the earlier subtree finishes first unless
		// the leaf escapes via an unfenced async below the LCA.
		firstLeaf := a
		if cb.Index < ca.Index {
			firstLeaf = b
		}
		return escapes(firstLeaf, l)
	case Async, Finish:
		// Single-child nodes: both paths go through the same child, so
		// the LCA cannot be one of these.
		return false
	}
	return false
}

// CheckUAF flags every outer-variable access that may happen in parallel
// with the end of its variable's scope — the §VI MHP-oracle formulation:
// "any outer variable access is potentially dangerous if the end of the
// variable scope may-happen-in-parallel with the access".
func (t *Tree) CheckUAF() []Violation {
	var out []Violation
	for _, a := range t.Accesses {
		end := t.ScopeEnd[a.Sym]
		if end == nil {
			// Parameters and anything without a tracked scope end are
			// conservatively flagged.
			out = append(out, Violation{Access: a})
			continue
		}
		if t.MHP(a.Leaf, end) {
			out = append(out, Violation{Access: a})
		}
	}
	return out
}

// Render prints the tree for debugging.
func (t *Tree) Render() string {
	var b strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		fmt.Fprintf(&b, "%s%s %s\n", strings.Repeat("  ", depth), n.Kind, n.Label)
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(t.Root, 0)
	return b.String()
}
