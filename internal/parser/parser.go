// Package parser builds MiniChapel ASTs from token streams by recursive
// descent. The grammar is the Chapel subset described in DESIGN.md §3.
//
// Error recovery is statement-level: on a syntax error the parser records
// a diagnostic and skips to the next ';' or '}' so that a corpus run over
// thousands of files keeps going.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"uafcheck/internal/ast"
	"uafcheck/internal/lexer"
	"uafcheck/internal/source"
	"uafcheck/internal/token"
)

// Parse tokenizes and parses one file. Diagnostics (including lexer
// errors) are appended to diags; the returned module contains whatever was
// recoverable.
func Parse(file *source.File, diags *source.Diagnostics) *ast.Module {
	toks := lexer.Tokenize(file, diags)
	p := &parser{file: file, toks: toks, diags: diags}
	return p.module()
}

// ParseSource is a convenience wrapper for tests and tools: it wraps the
// text in a File named name and parses it.
func ParseSource(name, src string, diags *source.Diagnostics) *ast.Module {
	return Parse(source.NewFile(name, src), diags)
}

type parser struct {
	file  *source.File
	toks  []token.Token
	pos   int
	diags *source.Diagnostics
	// beginCount assigns stable "TASK A", "TASK B" ... labels in source
	// order, matching the paper's Figure 1 naming.
	beginCount int
	// depth counts statement/expression nesting. Recursive descent turns
	// input nesting into Go stack depth, and stack exhaustion is not a
	// recoverable panic — so nesting past maxNestingDepth is rejected with
	// a diagnostic instead of being followed.
	depth     int
	depthDiag bool
}

// maxNestingDepth bounds statement/expression nesting. Real MiniChapel
// programs nest a handful of levels; the limit only exists so adversarial
// input (one megabyte of '(' or '{') cannot exhaust the goroutine stack.
const maxNestingDepth = 256

// tooDeep reports (once) and returns true when the nesting budget is
// spent; callers must then consume input without recursing.
func (p *parser) tooDeep() bool {
	if p.depth < maxNestingDepth {
		return false
	}
	if !p.depthDiag {
		p.depthDiag = true
		p.errorf(p.cur(), "construct nests deeper than %d levels", maxNestingDepth)
	}
	return true
}

func (p *parser) cur() token.Token { return p.toks[p.pos] }
func (p *parser) peek() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) advance() token.Token {
	t := p.cur()
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *parser) span(t token.Token) source.Span {
	return source.Span{Start: source.Pos(t.Span.Start), End: source.Pos(t.Span.End)}
}

func (p *parser) errorf(t token.Token, format string, args ...any) {
	p.diags.Addf(p.file, p.span(t), source.Error, format, args...)
}

// expect consumes a token of kind k or reports an error and returns the
// current token without consuming it.
func (p *parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.advance()
	}
	p.errorf(p.cur(), "expected %q, found %s", k.String(), p.cur())
	return p.cur()
}

// sync skips tokens until just after a ';' or until a '}' / EOF, for
// statement-level error recovery.
func (p *parser) syncStmt() {
	for {
		switch p.cur().Kind {
		case token.Semicolon:
			p.advance()
			return
		case token.RBrace, token.EOF:
			return
		}
		p.advance()
	}
}

// ---------------------------------------------------------------- module

func (p *parser) module() *ast.Module {
	m := &ast.Module{File: p.file}
	for !p.at(token.EOF) {
		switch p.cur().Kind {
		case token.KwProc:
			m.Procs = append(m.Procs, p.procDecl())
		case token.KwConfig, token.KwVar, token.KwConst:
			m.Configs = append(m.Configs, p.varDecl())
		default:
			p.errorf(p.cur(), "expected top-level proc or config declaration, found %s", p.cur())
			before := p.pos
			p.syncStmt()
			if p.pos == before {
				// syncStmt stops at '}' without consuming; at top level
				// that would loop forever.
				p.advance()
			}
		}
	}
	return m
}

func (p *parser) procDecl() *ast.ProcDecl {
	start := p.expect(token.KwProc)
	name := p.ident()
	p.expect(token.LParen)
	var params []ast.Param
	for !p.at(token.RParen) && !p.at(token.EOF) {
		before := p.pos
		if len(params) > 0 {
			p.expect(token.Comma)
		}
		byRef := false
		if p.at(token.KwRef) {
			p.advance()
			byRef = true
		} else if p.at(token.KwIn) {
			// `in` intent on a formal: by-value, our default.
			p.advance()
		}
		pn := p.ident()
		p.expect(token.Colon)
		pt := p.parseType()
		params = append(params, ast.Param{ByRef: byRef, Name: pn, Type: pt})
		if p.pos == before {
			// No progress on malformed input: bail out of the list.
			break
		}
	}
	p.expect(token.RParen)
	ret := ast.Type{Kind: ast.TypeVoid}
	if p.at(token.Colon) {
		p.advance()
		ret = p.parseType()
	}
	body := p.block()
	return &ast.ProcDecl{
		Name: name, Params: params, Ret: ret, Body: body,
		Sp: p.span(start).Cover(body.Span()),
	}
}

func (p *parser) parseType() ast.Type {
	t := ast.Type{}
	switch p.cur().Kind {
	case token.KwSync:
		p.advance()
		t.Qual = ast.QualSync
	case token.KwSingle:
		p.advance()
		t.Qual = ast.QualSingle
	case token.KwAtomic:
		p.advance()
		t.Qual = ast.QualAtomic
	}
	switch p.cur().Kind {
	case token.KwInt:
		p.advance()
		t.Kind = ast.TypeInt
	case token.KwBool:
		p.advance()
		t.Kind = ast.TypeBool
	case token.KwString:
		p.advance()
		t.Kind = ast.TypeString
	case token.KwVoid:
		p.advance()
		t.Kind = ast.TypeVoid
	default:
		p.errorf(p.cur(), "expected type, found %s", p.cur())
	}
	return t
}

func (p *parser) ident() *ast.Ident {
	t := p.cur()
	if t.Kind != token.Ident {
		p.errorf(t, "expected identifier, found %s", t)
		return &ast.Ident{Name: "_err_", Sp: p.span(t)}
	}
	p.advance()
	return &ast.Ident{Name: t.Lit, Sp: p.span(t)}
}

func (p *parser) block() *ast.BlockStmt {
	lb := p.expect(token.LBrace)
	b := &ast.BlockStmt{}
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		s := p.stmt()
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	rb := p.expect(token.RBrace)
	b.Sp = p.span(lb).Cover(p.span(rb))
	return b
}

// ---------------------------------------------------------------- stmts

func (p *parser) stmt() ast.Stmt {
	if p.tooDeep() {
		p.advance()
		p.syncStmt()
		return nil
	}
	p.depth++
	defer func() { p.depth-- }()
	switch p.cur().Kind {
	case token.KwConfig, token.KwVar, token.KwConst:
		return p.varDecl()
	case token.KwBegin:
		return p.beginStmt()
	case token.KwSync:
		// Disambiguate `sync { ... }` block from a `sync bool` type in a
		// declaration: a sync block is followed by '{'.
		if p.peek().Kind == token.LBrace {
			return p.syncBlock()
		}
		p.errorf(p.cur(), "unexpected 'sync' (did you mean 'sync { ... }' or 'var x: sync T')")
		p.syncStmt()
		return nil
	case token.KwIf:
		return p.ifStmt()
	case token.KwWhile:
		return p.whileStmt()
	case token.KwFor:
		return p.forStmt()
	case token.KwReturn:
		return p.returnStmt()
	case token.KwProc:
		d := p.procDecl()
		return &ast.ProcStmt{Proc: d, Sp: d.Sp}
	case token.LBrace:
		return p.block()
	case token.Ident:
		return p.simpleStmt()
	case token.Semicolon:
		p.advance() // empty statement
		return nil
	default:
		p.errorf(p.cur(), "unexpected token %s at start of statement", p.cur())
		p.syncStmt()
		return nil
	}
}

func (p *parser) varDecl() *ast.VarDecl {
	start := p.cur()
	config := false
	if p.at(token.KwConfig) {
		p.advance()
		config = true
	}
	isConst := false
	switch p.cur().Kind {
	case token.KwVar:
		p.advance()
	case token.KwConst:
		p.advance()
		isConst = true
	default:
		p.errorf(p.cur(), "expected 'var' or 'const', found %s", p.cur())
	}
	name := p.ident()
	typ := ast.Type{Kind: ast.TypeInt}
	typed := false
	if p.at(token.Colon) {
		p.advance()
		typ = p.parseType()
		typed = true
	}
	var init ast.Expr
	if p.at(token.Assign) {
		p.advance()
		init = p.expr()
	}
	if !typed && init == nil {
		p.errorf(start, "variable %s needs a type or an initializer", name.Name)
	}
	if !typed && init != nil {
		typ = inferType(init)
	}
	// Enforce the $-suffix naming convention the paper leans on (§II):
	// it is a warning-grade style issue, not an error.
	isSyncName := strings.HasSuffix(name.Name, "$")
	isSyncType := typ.Qual == ast.QualSync || typ.Qual == ast.QualSingle
	if isSyncType && !isSyncName {
		p.diags.Addf(p.file, name.Sp, source.Note,
			"sync/single variable %q should carry the conventional $ suffix", name.Name)
	}
	if !isSyncType && isSyncName {
		p.diags.Addf(p.file, name.Sp, source.Note,
			"variable %q has a $ suffix but is not declared sync/single", name.Name)
	}
	end := p.expect(token.Semicolon)
	return &ast.VarDecl{
		Config: config, Const: isConst, Name: name, Type: typ, Init: init,
		Sp: p.span(start).Cover(p.span(end)),
	}
}

func inferType(e ast.Expr) ast.Type {
	switch e.(type) {
	case *ast.BoolLit:
		return ast.Type{Kind: ast.TypeBool}
	case *ast.StringLit:
		return ast.Type{Kind: ast.TypeString}
	default:
		return ast.Type{Kind: ast.TypeInt}
	}
}

func (p *parser) beginStmt() *ast.BeginStmt {
	start := p.expect(token.KwBegin)
	var with []ast.WithClause
	if p.at(token.KwWith) {
		p.advance()
		p.expect(token.LParen)
		for !p.at(token.RParen) && !p.at(token.EOF) {
			before := p.pos
			if len(with) > 0 {
				p.expect(token.Comma)
			}
			intent := ast.IntentRef
			switch p.cur().Kind {
			case token.KwRef:
				p.advance()
			case token.KwIn:
				p.advance()
				intent = ast.IntentIn
			default:
				p.errorf(p.cur(), "expected 'ref' or 'in' intent, found %s", p.cur())
			}
			with = append(with, ast.WithClause{Intent: intent, Name: p.ident()})
			if p.pos == before {
				break
			}
		}
		p.expect(token.RParen)
	}
	label := fmt.Sprintf("TASK %s", taskLetters(p.beginCount))
	p.beginCount++
	body := p.block()
	return &ast.BeginStmt{
		With: with, Body: body, Label: label,
		Sp: p.span(start).Cover(body.Span()),
	}
}

// TaskLabel renders the display label of the i-th begin task of a file
// (0-based): "TASK A", "TASK B", ..., "TASK Z", "TASK AA", ... Labels
// are assigned in file source order across all procedures, so a
// procedure's labels depend on how many begins precede it — the
// incremental engine re-derives them via TaskLabel/TaskIndex instead of
// fingerprinting that prefix.
func TaskLabel(i int) string { return "TASK " + taskLetters(i) }

// TaskIndex inverts TaskLabel, returning the 0-based file-wide begin
// index of a label, or -1 when the string is not a task label.
func TaskIndex(label string) int {
	const prefix = "TASK "
	if len(label) <= len(prefix) || label[:len(prefix)] != prefix {
		return -1
	}
	i := 0
	for _, r := range label[len(prefix):] {
		if r < 'A' || r > 'Z' {
			return -1
		}
		i = i*26 + int(r-'A') + 1
	}
	return i - 1
}

// taskLetters yields A, B, ..., Z, AA, AB, ... for task labels.
func taskLetters(i int) string {
	s := ""
	for {
		s = string(rune('A'+i%26)) + s
		i = i/26 - 1
		if i < 0 {
			return s
		}
	}
}

func (p *parser) syncBlock() *ast.SyncStmt {
	start := p.expect(token.KwSync)
	body := p.block()
	return &ast.SyncStmt{Body: body, Sp: p.span(start).Cover(body.Span())}
}

func (p *parser) ifStmt() *ast.IfStmt {
	start := p.expect(token.KwIf)
	// The else-if chain recurses directly (not through stmt), so it needs
	// its own rung on the nesting budget.
	if p.tooDeep() {
		p.syncStmt()
		sp := p.span(start)
		return &ast.IfStmt{Cond: &ast.BoolLit{Sp: sp}, Then: &ast.BlockStmt{Sp: sp}, Sp: sp}
	}
	p.depth++
	defer func() { p.depth-- }()
	p.expect(token.LParen)
	cond := p.expr()
	p.expect(token.RParen)
	then := p.block()
	var els *ast.BlockStmt
	sp := p.span(start).Cover(then.Span())
	if p.at(token.KwElse) {
		p.advance()
		if p.at(token.KwIf) {
			inner := p.ifStmt()
			els = &ast.BlockStmt{Stmts: []ast.Stmt{inner}, Sp: inner.Sp}
		} else {
			els = p.block()
		}
		sp = sp.Cover(els.Span())
	}
	return &ast.IfStmt{Cond: cond, Then: then, Else: els, Sp: sp}
}

func (p *parser) whileStmt() *ast.WhileStmt {
	start := p.expect(token.KwWhile)
	p.expect(token.LParen)
	cond := p.expr()
	p.expect(token.RParen)
	body := p.block()
	return &ast.WhileStmt{Cond: cond, Body: body, Sp: p.span(start).Cover(body.Span())}
}

func (p *parser) forStmt() *ast.ForStmt {
	start := p.expect(token.KwFor)
	v := p.ident()
	p.expect(token.KwIn)
	lo := p.expr()
	rng, ok := lo.(*ast.RangeExpr)
	if !ok {
		p.errorf(p.cur(), "for loop requires a range lo..hi")
		rng = &ast.RangeExpr{Lo: lo, Hi: lo, Sp: lo.Span()}
	}
	body := p.block()
	return &ast.ForStmt{Var: v, Range: rng, Body: body, Sp: p.span(start).Cover(body.Span())}
}

func (p *parser) returnStmt() *ast.ReturnStmt {
	start := p.expect(token.KwReturn)
	var val ast.Expr
	if !p.at(token.Semicolon) {
		val = p.expr()
	}
	end := p.expect(token.Semicolon)
	return &ast.ReturnStmt{Value: val, Sp: p.span(start).Cover(p.span(end))}
}

// simpleStmt parses statements that begin with an identifier:
// assignment, inc/dec, bare sync read (`done$;`), calls, method calls.
func (p *parser) simpleStmt() ast.Stmt {
	start := p.cur()
	switch p.peek().Kind {
	case token.Assign, token.PlusEq, token.MinusEq, token.TimesEq:
		lhs := p.ident()
		op := p.advance().Lit
		if op == "" {
			op = "="
		}
		rhs := p.expr()
		end := p.expect(token.Semicolon)
		return &ast.AssignStmt{Lhs: lhs, Op: opSpelling(op), Rhs: rhs,
			Sp: p.span(start).Cover(p.span(end))}
	case token.PlusPlus, token.MinusMinus:
		x := p.ident()
		op := p.advance()
		end := p.expect(token.Semicolon)
		return &ast.IncDecStmt{X: x, Op: op.Kind.String(),
			Sp: p.span(start).Cover(p.span(end))}
	}
	// Calls, method calls, and bare expressions (notably `done$;`).
	e := p.expr()
	end := p.expect(token.Semicolon)
	sp := p.span(start).Cover(p.span(end))
	switch e.(type) {
	case *ast.CallExpr, *ast.MethodCallExpr:
		return &ast.CallStmt{X: e, Sp: sp}
	default:
		return &ast.ExprStmt{X: e, Sp: sp}
	}
}

func opSpelling(op string) string {
	switch op {
	case "=", "+=", "-=", "*=":
		return op
	default:
		return "="
	}
}

// ---------------------------------------------------------------- exprs

func (p *parser) expr() ast.Expr {
	if p.tooDeep() {
		t := p.advance()
		return &ast.IntLit{Value: 0, Sp: p.span(t)}
	}
	p.depth++
	defer func() { p.depth-- }()
	return p.binExpr(1)
}

func (p *parser) binExpr(minPrec int) ast.Expr {
	lhs := p.unary()
	for {
		k := p.cur().Kind
		prec := k.Precedence()
		if prec < minPrec || prec == 0 {
			return lhs
		}
		op := p.advance()
		rhs := p.binExpr(prec + 1)
		if k == token.DotDot {
			lhs = &ast.RangeExpr{Lo: lhs, Hi: rhs, Sp: lhs.Span().Cover(rhs.Span())}
		} else {
			lhs = &ast.BinaryExpr{Op: op.Kind.String(), X: lhs, Y: rhs,
				Sp: lhs.Span().Cover(rhs.Span())}
		}
	}
}

func (p *parser) unary() ast.Expr {
	switch p.cur().Kind {
	case token.Not, token.Minus:
		op := p.advance()
		// Operator chains (`----x`) recurse one frame per operator; they
		// share the nesting budget with parenthesized expressions.
		if p.tooDeep() {
			return &ast.IntLit{Value: 0, Sp: p.span(op)}
		}
		p.depth++
		x := p.unary()
		p.depth--
		return &ast.UnaryExpr{Op: op.Kind.String(), X: x, Sp: p.span(op).Cover(x.Span())}
	}
	return p.postfix()
}

func (p *parser) postfix() ast.Expr {
	e := p.primary()
	for {
		switch p.cur().Kind {
		case token.Dot:
			p.advance()
			recv, ok := e.(*ast.Ident)
			if !ok {
				p.errorf(p.cur(), "method call receiver must be a variable")
				recv = &ast.Ident{Name: "_err_", Sp: e.Span()}
			}
			method := p.ident()
			args, sp := p.callArgs()
			e = &ast.MethodCallExpr{Recv: recv, Method: method.Name, Args: args,
				Sp: e.Span().Cover(sp)}
		case token.LParen:
			fun, ok := e.(*ast.Ident)
			if !ok {
				p.errorf(p.cur(), "call target must be a procedure name")
				return e
			}
			args, sp := p.callArgs()
			e = &ast.CallExpr{Fun: fun, Args: args, Sp: e.Span().Cover(sp)}
		default:
			return e
		}
	}
}

func (p *parser) callArgs() ([]ast.Expr, source.Span) {
	lp := p.expect(token.LParen)
	var args []ast.Expr
	for !p.at(token.RParen) && !p.at(token.EOF) {
		before := p.pos
		if len(args) > 0 {
			p.expect(token.Comma)
		}
		args = append(args, p.expr())
		if p.pos == before {
			break
		}
	}
	rp := p.expect(token.RParen)
	return args, p.span(lp).Cover(p.span(rp))
}

func (p *parser) primary() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.Ident:
		p.advance()
		return &ast.Ident{Name: t.Lit, Sp: p.span(t)}
	case token.IntLit:
		p.advance()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			p.errorf(t, "invalid integer literal %q", t.Lit)
		}
		return &ast.IntLit{Value: v, Sp: p.span(t)}
	case token.BoolLit:
		p.advance()
		return &ast.BoolLit{Value: t.Lit == "true", Sp: p.span(t)}
	case token.StringLit:
		p.advance()
		return &ast.StringLit{Value: unquote(t.Lit), Sp: p.span(t)}
	case token.LParen:
		p.advance()
		e := p.expr()
		p.expect(token.RParen)
		return e
	default:
		p.errorf(t, "expected expression, found %s", t)
		p.advance()
		return &ast.IntLit{Value: 0, Sp: p.span(t)}
	}
}

func unquote(lit string) string {
	if len(lit) >= 2 && lit[0] == '"' {
		lit = lit[1:]
		if lit[len(lit)-1] == '"' {
			lit = lit[:len(lit)-1]
		}
	}
	var b strings.Builder
	for i := 0; i < len(lit); i++ {
		if lit[i] == '\\' && i+1 < len(lit) {
			i++
			switch lit[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				b.WriteByte(lit[i])
			}
			continue
		}
		b.WriteByte(lit[i])
	}
	return b.String()
}
