package parser

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"uafcheck/internal/ast"
	"uafcheck/internal/source"
)

func parse(t *testing.T, src string) (*ast.Module, *source.Diagnostics) {
	t.Helper()
	diags := &source.Diagnostics{}
	mod := ParseSource("t.chpl", src, diags)
	return mod, diags
}

func parseOK(t *testing.T, src string) *ast.Module {
	t.Helper()
	mod, diags := parse(t, src)
	if diags.HasErrors() {
		t.Fatalf("parse errors:\n%s", diags)
	}
	return mod
}

func onlyProc(t *testing.T, src string) *ast.ProcDecl {
	t.Helper()
	mod := parseOK(t, src)
	if len(mod.Procs) != 1 {
		t.Fatalf("want 1 proc, got %d", len(mod.Procs))
	}
	return mod.Procs[0]
}

func TestProcDeclaration(t *testing.T) {
	p := onlyProc(t, `proc add(a: int, ref b: int): int { return a + b; }`)
	if p.Name.Name != "add" {
		t.Errorf("name = %s", p.Name.Name)
	}
	if len(p.Params) != 2 {
		t.Fatalf("params = %d", len(p.Params))
	}
	if p.Params[0].ByRef || !p.Params[1].ByRef {
		t.Errorf("byref flags wrong: %+v", p.Params)
	}
	if p.Ret.Kind != ast.TypeInt {
		t.Errorf("return type = %v", p.Ret)
	}
	ret, ok := p.Body.Stmts[0].(*ast.ReturnStmt)
	if !ok {
		t.Fatalf("body[0] = %T", p.Body.Stmts[0])
	}
	if _, ok := ret.Value.(*ast.BinaryExpr); !ok {
		t.Errorf("return value = %T", ret.Value)
	}
}

func TestVarDeclarations(t *testing.T) {
	p := onlyProc(t, `proc f() {
	  var a: int = 1;
	  var b: bool;
	  const c: string = "s";
	  var d = 42;
	  var done$: sync bool;
	  var once$: single int;
	  var cnt: atomic int;
	}`)
	decls := p.Body.Stmts
	if len(decls) != 7 {
		t.Fatalf("stmts = %d", len(decls))
	}
	typ := func(i int) ast.Type { return decls[i].(*ast.VarDecl).Type }
	if typ(0).Kind != ast.TypeInt || typ(1).Kind != ast.TypeBool || typ(2).Kind != ast.TypeString {
		t.Error("basic types wrong")
	}
	if !decls[2].(*ast.VarDecl).Const {
		t.Error("const flag lost")
	}
	if typ(3).Kind != ast.TypeInt {
		t.Error("inferred type wrong")
	}
	if typ(4).Qual != ast.QualSync || typ(5).Qual != ast.QualSingle || typ(6).Qual != ast.QualAtomic {
		t.Error("sync qualifiers wrong")
	}
}

func TestTopLevelConfig(t *testing.T) {
	mod := parseOK(t, "config const flag = true;\nproc f() { writeln(flag); }")
	if len(mod.Configs) != 1 || !mod.Configs[0].Config {
		t.Fatalf("configs = %v", mod.Configs)
	}
	if mod.Proc("f") == nil || mod.Proc("g") != nil {
		t.Error("Proc lookup wrong")
	}
}

func TestBeginWithClauses(t *testing.T) {
	p := onlyProc(t, `proc f() {
	  var x: int = 1;
	  var y: int = 2;
	  begin with (ref x, in y) { writeln(x, y); }
	  begin { writeln(1); }
	}`)
	bg := p.Body.Stmts[2].(*ast.BeginStmt)
	if len(bg.With) != 2 {
		t.Fatalf("with clauses = %d", len(bg.With))
	}
	if bg.With[0].Intent != ast.IntentRef || bg.With[0].Name.Name != "x" {
		t.Errorf("clause 0 = %+v", bg.With[0])
	}
	if bg.With[1].Intent != ast.IntentIn || bg.With[1].Name.Name != "y" {
		t.Errorf("clause 1 = %+v", bg.With[1])
	}
	if bg.Label != "TASK A" {
		t.Errorf("label = %q", bg.Label)
	}
	bg2 := p.Body.Stmts[3].(*ast.BeginStmt)
	if len(bg2.With) != 0 || bg2.Label != "TASK B" {
		t.Errorf("second begin = %+v", bg2)
	}
}

func TestTaskLabelsBeyondZ(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("proc f() {\n")
	for i := 0; i < 28; i++ {
		sb.WriteString("begin { writeln(1); }\n")
	}
	sb.WriteString("}\n")
	p := onlyProc(t, sb.String())
	last := p.Body.Stmts[27].(*ast.BeginStmt)
	if last.Label != "TASK AB" {
		t.Errorf("28th task label = %q, want TASK AB", last.Label)
	}
}

func TestSyncBlockVsSyncType(t *testing.T) {
	p := onlyProc(t, `proc f() {
	  var done$: sync bool;
	  sync {
	    begin { writeln(1); }
	  }
	}`)
	if _, ok := p.Body.Stmts[0].(*ast.VarDecl); !ok {
		t.Fatalf("stmt 0 = %T", p.Body.Stmts[0])
	}
	sb, ok := p.Body.Stmts[1].(*ast.SyncStmt)
	if !ok {
		t.Fatalf("stmt 1 = %T", p.Body.Stmts[1])
	}
	if len(sb.Body.Stmts) != 1 {
		t.Error("sync block body wrong")
	}
}

func TestBareSyncReadStatement(t *testing.T) {
	p := onlyProc(t, `proc f() {
	  var done$: sync bool;
	  done$;
	}`)
	es, ok := p.Body.Stmts[1].(*ast.ExprStmt)
	if !ok {
		t.Fatalf("stmt = %T", p.Body.Stmts[1])
	}
	id, ok := es.X.(*ast.Ident)
	if !ok || id.Name != "done$" {
		t.Errorf("bare read = %v", es.X)
	}
}

func TestMethodCalls(t *testing.T) {
	p := onlyProc(t, `proc f() {
	  var done$: sync bool;
	  var a: atomic int;
	  done$.writeEF(true);
	  a.fetchAdd(2);
	  var v: int = a.read();
	}`)
	cs := p.Body.Stmts[2].(*ast.CallStmt)
	mc := cs.X.(*ast.MethodCallExpr)
	if mc.Recv.Name != "done$" || mc.Method != "writeEF" || len(mc.Args) != 1 {
		t.Errorf("method call = %+v", mc)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	p := onlyProc(t, `proc f() { var r: bool = 1 + 2 * 3 == 7 && true; }`)
	init := p.Body.Stmts[0].(*ast.VarDecl).Init
	if got := ast.PrintExpr(init); got != "(((1 + (2 * 3)) == 7) && true)" {
		t.Errorf("precedence tree = %s", got)
	}
}

func TestUnaryAndParens(t *testing.T) {
	p := onlyProc(t, `proc f() { var r: int = -(1 + 2) * 3; }`)
	init := p.Body.Stmts[0].(*ast.VarDecl).Init
	if got := ast.PrintExpr(init); got != "(-(1 + 2) * 3)" {
		t.Errorf("tree = %s", got)
	}
}

func TestIfElseChain(t *testing.T) {
	p := onlyProc(t, `proc f() {
	  var x: int = 1;
	  if (x > 2) { writeln(1); }
	  else if (x > 1) { writeln(2); }
	  else { writeln(3); }
	}`)
	ifs, ok := p.Body.Stmts[1].(*ast.IfStmt)
	if !ok {
		t.Fatalf("stmt = %T", p.Body.Stmts[1])
	}
	inner, ok := ifs.Else.Stmts[0].(*ast.IfStmt)
	if !ok {
		t.Fatalf("else-if = %T", ifs.Else.Stmts[0])
	}
	if inner.Else == nil {
		t.Error("final else missing")
	}
}

func TestLoops(t *testing.T) {
	p := onlyProc(t, `proc f() {
	  for i in 1..10 { writeln(i); }
	  var k: int = 3;
	  while (k > 0) { k -= 1; }
	}`)
	fr, ok := p.Body.Stmts[0].(*ast.ForStmt)
	if !ok || fr.Var.Name != "i" {
		t.Fatalf("for = %+v", p.Body.Stmts[0])
	}
	if _, ok := p.Body.Stmts[2].(*ast.WhileStmt); !ok {
		t.Fatalf("while = %T", p.Body.Stmts[2])
	}
}

func TestNestedProc(t *testing.T) {
	p := onlyProc(t, `proc outer() {
	  var x: int = 1;
	  proc inner() { writeln(x); }
	  inner();
	}`)
	ps, ok := p.Body.Stmts[1].(*ast.ProcStmt)
	if !ok || ps.Proc.Name.Name != "inner" {
		t.Fatalf("nested proc = %+v", p.Body.Stmts[1])
	}
}

func TestIncDecStatements(t *testing.T) {
	p := onlyProc(t, `proc f() { var x: int = 0; x++; x--; }`)
	inc := p.Body.Stmts[1].(*ast.IncDecStmt)
	dec := p.Body.Stmts[2].(*ast.IncDecStmt)
	if inc.Op != "++" || dec.Op != "--" {
		t.Errorf("ops = %s %s", inc.Op, dec.Op)
	}
}

func TestStyleNotesForDollarNames(t *testing.T) {
	_, diags := parse(t, `proc f() { var done: sync bool; var odd$: int = 1; }`)
	if diags.HasErrors() {
		t.Fatal(diags)
	}
	if diags.Count(source.Note) != 2 {
		t.Errorf("want 2 style notes, got:\n%s", diags)
	}
}

func TestErrorRecoveryKeepsGoing(t *testing.T) {
	mod, diags := parse(t, `proc f() {
	  var = broken;
	  writeln(1);
	}
	proc g() { writeln(2); }`)
	if !diags.HasErrors() {
		t.Fatal("expected errors")
	}
	if len(mod.Procs) != 2 {
		t.Fatalf("recovery lost procs: %d", len(mod.Procs))
	}
	if mod.Proc("g") == nil {
		t.Error("proc g lost after error")
	}
}

func TestMissingSemicolonReported(t *testing.T) {
	_, diags := parse(t, `proc f() { var x: int = 1 writeln(x); }`)
	if !diags.HasErrors() {
		t.Error("missing semicolon not reported")
	}
}

func TestUntypedUninitializedRejected(t *testing.T) {
	_, diags := parse(t, `proc f() { var x; }`)
	if !diags.HasErrors() {
		t.Error("var without type or init not reported")
	}
}

func TestEmptyStatementsTolerated(t *testing.T) {
	p := onlyProc(t, `proc f() { ;; writeln(1); ; }`)
	if len(p.Body.Stmts) != 1 {
		t.Errorf("stmts = %d", len(p.Body.Stmts))
	}
}

// TestPrintParseRoundTrip: pretty-printing a parsed module and reparsing
// it yields the same printed form (printer fixpoint).
func TestPrintParseRoundTrip(t *testing.T) {
	srcs := []string{
		`proc f() {
		  var x: int = 10;
		  var doneA$: sync bool;
		  begin with (ref x) {
		    writeln(x);
		    x += 1;
		    doneA$ = true;
		  }
		  doneA$;
		}`,
		`config const flag = true;
		proc g() {
		  var x: int = 1;
		  if (flag) { x = 2; } else { x = 3; }
		  for i in 1..3 { x += i; }
		  while (x > 0) { x -= 1; }
		  sync { begin { writeln(1); } }
		}`,
		`proc h(ref out: int, n: int): int {
		  proc helper(v: int): int { return v * 2; }
		  out = helper(n);
		  return out;
		}
		proc main() { var r: int = 0; h(r, 21); }`,
	}
	for i, src := range srcs {
		mod := parseOK(t, src)
		printed := ast.Print(mod)
		diags := &source.Diagnostics{}
		mod2 := ParseSource("roundtrip.chpl", printed, diags)
		if diags.HasErrors() {
			t.Fatalf("case %d: reparse failed:\n%s\nprinted:\n%s", i, diags, printed)
		}
		printed2 := ast.Print(mod2)
		if printed != printed2 {
			t.Errorf("case %d: printer not a fixpoint:\n--- first\n%s\n--- second\n%s",
				i, printed, printed2)
		}
	}
}

// TestParserTotalProperty: the parser must terminate (with diagnostics,
// not a hang) on arbitrary malformed input. Regression: `proc f( {` used
// to loop forever in the parameter list.
func TestParserTotalProperty(t *testing.T) {
	fragments := []string{
		"proc", "f", "(", ")", "{", "}", "var", "x", ":", "int", "=", "1",
		";", "begin", "with", "ref", "in", "sync", "if", "else", "while",
		"for", "..", "+", "==", "&&", "writeln", "\"s\"", "$", ",", ".",
		"readFE", "config", "const", "return", "atomic", "single",
	}
	check := func(picks []uint8) bool {
		var sb strings.Builder
		for _, p := range picks {
			sb.WriteString(fragments[int(p)%len(fragments)])
			sb.WriteByte(' ')
		}
		diags := &source.Diagnostics{}
		done := make(chan struct{})
		go func() {
			ParseSource("fuzz.chpl", sb.String(), diags)
			close(done)
		}()
		select {
		case <-done:
			return true
		case <-timeAfter():
			t.Logf("parser hung on: %s", sb.String())
			return false
		}
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
	// The original regression input, explicitly.
	diags := &source.Diagnostics{}
	ParseSource("regress.chpl", "proc f( {", diags)
	if !diags.HasErrors() {
		t.Error("malformed proc header accepted")
	}
}

func timeAfter() <-chan time.Time { return time.After(2 * time.Second) }

func TestSpanSanity(t *testing.T) {
	src := `proc f() { var x: int = 1; writeln(x); }`
	mod := parseOK(t, src)
	ast.Walk(mod, func(n ast.Node) bool {
		sp := n.Span()
		if sp.IsValid() {
			if int(sp.End) > len(src)+1 || sp.Start < 0 {
				t.Errorf("%T span out of range: %+v", n, sp)
			}
		}
		return true
	})
}
