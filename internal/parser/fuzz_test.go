package parser

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uafcheck/internal/source"
)

// seedParseCorpus mirrors the lexer fuzz seeds: the checked-in programs
// plus adversarial snippets aimed at the parser's recovery paths.
func seedParseCorpus(f *testing.F) {
	f.Helper()
	for _, dir := range []string{"../../testdata", "../../testdata/suite"} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".chpl") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err == nil {
				f.Add(string(data))
			}
		}
	}
	for _, s := range crasherInputs {
		f.Add(s)
	}
}

// crasherInputs are regression seeds for classes of input that crash
// naive recursive-descent parsers: unterminated constructs, deep
// nesting (stack exhaustion), recovery loops, and malformed literals.
var crasherInputs = []string{
	"",
	";",
	"}",
	"proc",
	"proc p(",
	"proc p() {",
	"proc p() { var x; }",
	"proc p() { if }",
	"proc p() { x.; }",
	"proc p() { x.y.z(); }",
	"proc p() { (1)(2); }",
	"var x = \"abc", // unterminated string initializer
	"proc p() { return 99999999999999999999999999; }",
	"begin { }", // begin outside a proc
	strings.Repeat("proc p() { ", 50),
	// Nesting bombs: without the parser's depth budget each of these
	// turns input length into Go stack depth.
	"proc p() { x = " + strings.Repeat("(", 100000) + "1;}",
	"proc p() " + strings.Repeat("{", 100000),
	"proc p() { x = " + strings.Repeat("-", 100000) + "1; }",
	"proc p() { " + strings.Repeat("if (x) { ", 2000) + "}",
	"proc p() { " + strings.Repeat("if (x) {} else if (x) {} ", 2000) + "}",
	"proc p() { " + strings.Repeat("begin { ", 5000) + "}",
}

// FuzzParse asserts the parser's total-function contract: any byte
// string produces a module (possibly empty) plus diagnostics — never a
// panic, never a hang. The analysis pipeline's crash isolation is the
// backstop; this is the front line.
func FuzzParse(f *testing.F) {
	seedParseCorpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		diags := &source.Diagnostics{}
		mod := ParseSource("fuzz.chpl", src, diags)
		if mod == nil {
			t.Fatal("ParseSource returned a nil module")
		}
	})
}

// TestParserCrasherRegressions pins the crasher corpus as a plain test
// so the inputs are exercised on every `go test` run, not only under
// `go test -fuzz`.
func TestParserCrasherRegressions(t *testing.T) {
	for i, src := range crasherInputs {
		diags := &source.Diagnostics{}
		mod := ParseSource("crasher.chpl", src, diags)
		if mod == nil {
			t.Errorf("case %d: nil module", i)
		}
	}
}
