package wire

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"uafcheck"
)

// TestRepairLinesCanonical: the NDJSON projection is one patch line
// per accepted patch plus a terminal summary, byte-identical across
// repeated encodings of the same repair.
func TestRepairLinesCanonical(t *testing.T) {
	rr, err := uafcheck.Repair(context.Background(), "leak.chpl", uafSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Patches) == 0 || !rr.Clean() {
		t.Fatalf("leak source should repair clean with patches, got %+v", rr)
	}

	lines := RepairLines("leak.chpl", rr)
	if len(lines) != len(rr.Patches)+1 {
		t.Fatalf("lines = %d, want %d", len(lines), len(rr.Patches)+1)
	}
	for i, l := range lines[:len(lines)-1] {
		if l.Kind != RepairKindPatch || l.Seq != i+1 || l.Patch == nil || l.Summary != nil {
			t.Fatalf("patch line %d malformed: %+v", i, l)
		}
		if l.Name != "leak.chpl" || l.APIVersion != APIVersion {
			t.Fatalf("patch line %d envelope: %+v", i, l)
		}
		if !l.Patch.Verdict.Verified || l.Patch.Diff == "" {
			t.Fatalf("patch line %d carries an unverified or empty patch", i)
		}
	}
	last := lines[len(lines)-1]
	if last.Kind != RepairKindSummary || last.Summary == nil || last.Patch != nil || last.Seq != 0 {
		t.Fatalf("summary line malformed: %+v", last)
	}
	if last.Summary.Status != RepairStatusClean || last.Summary.RemainingWarnings != 0 {
		t.Fatalf("summary: %+v", last.Summary)
	}
	if last.Summary.Patches != len(rr.Patches) || last.Summary.Diff != rr.Diff {
		t.Fatalf("summary does not mirror the report: %+v", last.Summary)
	}

	a, err := EncodeRepair("leak.chpl", rr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeRepair("leak.chpl", rr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("re-encoding differs")
	}
	// Each record is one line of valid JSON.
	recs := strings.Split(strings.TrimSuffix(string(a), "\n"), "\n")
	if len(recs) != len(lines) {
		t.Fatalf("NDJSON records = %d, want %d", len(recs), len(lines))
	}
	for _, r := range recs {
		if !json.Valid([]byte(r)) {
			t.Fatalf("invalid NDJSON record: %s", r)
		}
		var decoded RepairLine
		if err := json.Unmarshal([]byte(r), &decoded); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if decoded.APIVersion != APIVersion {
			t.Fatalf("record lacks api_version: %s", r)
		}
	}
}

// TestRepairLinesPartial: an unrepairable file still terminates with a
// partial summary carrying the remaining warnings.
func TestRepairLinesPartial(t *testing.T) {
	// A conditional spawn defeats the token chain, and the fence
	// candidates can also fail verification; whatever happens, the
	// summary must be consistent with the patch lines.
	rr, err := uafcheck.Repair(context.Background(), "leak.chpl", uafSrc)
	if err != nil {
		t.Fatal(err)
	}
	rr.RemainingWarnings = 1 // simulate a partial outcome
	lines := RepairLines("leak.chpl", rr)
	sum := lines[len(lines)-1].Summary
	if sum.Status != RepairStatusPartial {
		t.Fatalf("status = %q, want partial", sum.Status)
	}
}
