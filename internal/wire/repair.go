// Repair wire encoding: the NDJSON line vocabulary of the uafserve
// POST /v1/repair endpoint and of `uafcheck -fix -format=json`. Like
// the analyze Result envelope, the encoding is deliberately
// byte-stable — fixed field order, sorted warning lists, no volatile
// telemetry — so a repair streamed by the server is byte-identical to
// the same repair produced by the CLI.
package wire

import (
	"encoding/json"

	"uafcheck"
)

// Repair line kinds. A successful repair response is zero or more
// "patch" lines (one per accepted patch, in application order)
// terminated by exactly one "summary" line. A refused repair (parse
// failure, degraded evidence) produces no lines at all — the refusal
// travels as a typed HTTP error instead, because a patch from a
// degraded analysis must never reach a consumer.
const (
	RepairKindPatch   = "patch"
	RepairKindSummary = "summary"
)

// Repair summary statuses.
const (
	// RepairStatusClean: every warning was repaired away.
	RepairStatusClean = "clean"
	// RepairStatusPartial: warnings remain (unverifiable candidates
	// were refused; see Rejected).
	RepairStatusPartial = "partial"
)

// RepairLine is one NDJSON line of a repair response.
type RepairLine struct {
	// Name echoes the input file name.
	Name string `json:"name"`
	// APIVersion identifies the envelope format (always APIVersion).
	APIVersion string `json:"api_version"`
	// Kind is RepairKindPatch or RepairKindSummary.
	Kind string `json:"kind"`
	// Seq is the 1-based patch ordinal (patch lines only).
	Seq int `json:"seq,omitempty"`
	// Patch carries one verified patch (patch lines only).
	Patch *uafcheck.Patch `json:"patch,omitempty"`
	// Summary closes the stream (summary lines only).
	Summary *RepairSummary `json:"summary,omitempty"`
}

// RepairSummary is the terminal line of a repair response.
type RepairSummary struct {
	// Status is RepairStatusClean or RepairStatusPartial.
	Status string `json:"status"`
	// Patches counts the accepted patches (== the patch lines above).
	Patches int `json:"patches"`
	// InitialWarnings / RemainingWarnings are the verified warning
	// counts before the first patch and after the last.
	InitialWarnings   int `json:"initial_warnings"`
	RemainingWarnings int `json:"remaining_warnings"`
	// Diff is the cumulative unified diff original -> repaired (""
	// when no patch was accepted). Applying it with `patch -p1`
	// reproduces the repaired source in one step.
	Diff string `json:"diff,omitempty"`
	// Remaining lists the warnings still present in the repaired
	// source, in canonical order (empty when Status is clean).
	Remaining []uafcheck.Warning `json:"remaining,omitempty"`
	// Rejected explains candidates the verifier refused.
	Rejected []string `json:"rejected,omitempty"`
}

// RepairLines projects a repair report into its canonical NDJSON line
// sequence: one patch line per accepted patch, then the summary.
func RepairLines(name string, rr *uafcheck.RepairReport) []RepairLine {
	lines := make([]RepairLine, 0, len(rr.Patches)+1)
	for i := range rr.Patches {
		p := rr.Patches[i]
		lines = append(lines, RepairLine{
			Name:       name,
			APIVersion: APIVersion,
			Kind:       RepairKindPatch,
			Seq:        i + 1,
			Patch:      &p,
		})
	}
	status := RepairStatusPartial
	if rr.Clean() {
		status = RepairStatusClean
	}
	lines = append(lines, RepairLine{
		Name:       name,
		APIVersion: APIVersion,
		Kind:       RepairKindSummary,
		Summary: &RepairSummary{
			Status:            status,
			Patches:           len(rr.Patches),
			InitialWarnings:   rr.InitialWarnings,
			RemainingWarnings: rr.RemainingWarnings,
			Diff:              rr.Diff,
			Remaining:         rr.Remaining,
			Rejected:          rr.Rejected,
		},
	})
	return lines
}

// Encode renders the line as canonical one-line JSON with a trailing
// newline — one NDJSON record.
func (l RepairLine) Encode() ([]byte, error) {
	b, err := json.Marshal(l)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// EncodeRepair renders the full canonical response body for one
// repair: every line of RepairLines, concatenated.
func EncodeRepair(name string, rr *uafcheck.RepairReport) ([]byte, error) {
	var out []byte
	for _, l := range RepairLines(name, rr) {
		b, err := l.Encode()
		if err != nil {
			return nil, err
		}
		out = append(out, b...)
	}
	return out, nil
}
