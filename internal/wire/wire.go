// Package wire is the stable serialization layer shared by the
// uafserve daemon and the CLIs: one canonical JSON encoding of a
// per-file analysis outcome, plus a SARIF 2.1.0 projection of warning
// sets for code-scanning consumers.
//
// The canonical encoding is deliberately byte-stable: warnings are
// sorted into the presentation order of uafcheck.SortWarnings,
// map-backed fields rely on encoding/json's sorted map keys, and the
// volatile telemetry snapshot (wall-clock phase spans, cache traffic
// counters that differ between a pipeline run and a cache hit) is
// stripped unless explicitly requested. Consequently the bytes for a
// given (name, source, options) input are identical whether the report
// came from cmd/uafcheck, a live uafserve analysis, a singleflight
// follower, or the content-addressed cache — which is what makes
// responses deduplicable and byte-comparable across surfaces.
package wire

import (
	"encoding/json"

	"uafcheck"
)

// APIVersion is the wire-format version stamped into every Result
// envelope. It matches the uafserve route prefix ("/v1/..."): the
// envelope shape and the canonical byte encoding only change together
// with this string, so consumers can pin on it. See docs/SERVER.md for
// the compatibility policy.
const APIVersion = "v1"

// Result is the canonical per-file outcome DTO: the body of one
// uafserve /v1/analyze response, one line of a /v1/analyze-batch or
// /v1/delta NDJSON stream, and one line of `uafcheck -format=json`
// output.
type Result struct {
	// Name echoes the input file name.
	Name string `json:"name"`
	// APIVersion identifies the envelope format (always APIVersion).
	APIVersion string `json:"api_version"`
	// Status classifies the outcome with the batch-driver vocabulary:
	// "ok", "degraded", "timed-out", "crashed" or "error". Derived from
	// the report itself (see StatusOf) so every entry point agrees.
	Status string `json:"status"`
	// Error carries the frontend diagnostics for status "error".
	Error string `json:"error,omitempty"`
	// Report is the analysis report; nil only for status "error".
	Report *uafcheck.Report `json:"report,omitempty"`
	// Metrics optionally carries the telemetry snapshot (stripped from
	// the canonical encoding; populated only when the caller asked for
	// in-band metrics, which forfeits byte-stability).
	Metrics *uafcheck.Metrics `json:"metrics,omitempty"`
}

// StatusOf derives the canonical status string from a per-file outcome,
// matching internal/batch's Status vocabulary: err wins, then the
// degradation ladder reason, then "ok".
func StatusOf(rep *uafcheck.Report, err error) string {
	switch {
	case err != nil || rep == nil:
		return "error"
	case rep.Degraded == nil:
		return "ok"
	}
	switch rep.Degraded.Reason {
	case uafcheck.DegradePanic:
		return "crashed"
	case uafcheck.DegradeDeadline:
		return "timed-out"
	default: // budget, cancelled
		return "degraded"
	}
}

// NewResult builds the canonical Result for one file outcome. The
// report is cloned, its warnings sorted into presentation order, and
// its telemetry stripped — unless includeMetrics is set, in which case
// the snapshot travels in the separate Metrics field and byte-stability
// across cache hits no longer holds.
func NewResult(name string, rep *uafcheck.Report, err error, includeMetrics bool) Result {
	res := Result{Name: name, APIVersion: APIVersion, Status: StatusOf(rep, err)}
	if err != nil {
		res.Error = err.Error()
	}
	if rep == nil {
		return res
	}
	cp := rep.Clone()
	uafcheck.SortWarnings(cp.Warnings)
	if includeMetrics {
		m := cp.Metrics
		res.Metrics = &m
	}
	cp.Metrics = uafcheck.Metrics{}
	res.Report = cp
	return res
}

// Encode renders the Result as one compact JSON line (no trailing
// newline). Byte-stable for canonical results: encoding/json emits
// struct fields in declaration order and map keys sorted.
func (r Result) Encode() ([]byte, error) {
	return json.Marshal(r)
}
