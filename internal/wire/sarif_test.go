package wire

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uafcheck"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenInput builds a fixed, analyzer-independent document input: two
// files, both warning kinds, a conservative downgrade, and a repair
// that eliminates one warning but not the other. Hand-constructed on
// purpose — the golden file pins the SARIF *encoding*, and must not
// drift when the analyzer's warning output changes.
func goldenInput() ([]Result, map[string]*uafcheck.RepairReport) {
	buggy := &uafcheck.Report{Warnings: []uafcheck.Warning{
		{Var: "x", Task: "TASK A", Proc: "f", Write: true,
			Reason: "after-frontier", Pos: "buggy.chpl:3:5",
			AccessLine: 3, AccessCol: 5, DeclLine: 2},
		{Var: "y", Task: "TASK B", Proc: "f", Write: false,
			Reason: "never-synchronized", Pos: "buggy.chpl:6:3",
			AccessLine: 6, AccessCol: 3, DeclLine: 2, Conservative: true},
	}}
	clean := &uafcheck.Report{}
	results := []Result{
		NewResult("buggy.chpl", buggy, nil, false),
		NewResult("clean.chpl", clean, nil, false),
	}
	diff := strings.Join([]string{
		"--- a/buggy.chpl",
		"+++ b/buggy.chpl",
		"@@ -2,4 +2,6 @@",
		" var x: int = 1;",
		"+var x_done$: sync bool;",
		" begin with (ref x) { // TASK A",
		"   x = 2;",
		"+  x_done$ = true;",
		" }",
		"@@ -7,2 +9,3 @@",
		" writeln(x);",
		"+x_done$;",
		"",
	}, "\n")
	repairs := map[string]*uafcheck.RepairReport{
		"buggy.chpl": {
			Name: "buggy.chpl",
			Diff: diff,
			Patches: []uafcheck.Patch{{
				Strategy: "token-chain", Proc: "f", Task: "TASK A",
				Token: "x_done$", Diff: diff,
				Verdict: uafcheck.Verdict{
					Verified:       true,
					Checks:         []string{uafcheck.CheckStaticReanalysis, uafcheck.CheckScheduleOracle},
					WarningsBefore: 2, WarningsAfter: 1,
				},
			}},
			InitialWarnings:   2,
			RemainingWarnings: 1,
			Remaining: []uafcheck.Warning{
				{Var: "y", Task: "TASK B", Proc: "f", Write: false,
					Reason: "never-synchronized", Pos: "buggy.chpl:8:3",
					AccessLine: 8, AccessCol: 3, DeclLine: 2, Conservative: true},
			},
		},
	}
	return results, repairs
}

// TestSARIFGolden pins the full SARIF document — schema, rule metadata
// (id, shortDescription, helpUri), result shape, and the fixes
// projection — against a golden file. Any schema drift fails here; run
// `go test ./internal/wire/ -run SARIFGolden -update` to re-bless an
// intentional change.
func TestSARIFGolden(t *testing.T) {
	results, repairs := goldenInput()
	got, err := SARIFWithFixes(results, repairs).EncodeIndent()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden.sarif")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("SARIF document drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestSARIFRuleMetadata: every known warning kind carries the full
// rule metadata triple (id, shortDescription, helpUri).
func TestSARIFRuleMetadata(t *testing.T) {
	results, _ := goldenInput()
	log := SARIF(results)
	rules := log.Runs[0].Tool.Driver.Rules
	if len(rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(rules))
	}
	for _, r := range rules {
		if r.ID == "" || r.ShortDescription.Text == "" || r.HelpURI == "" {
			t.Errorf("rule %q missing metadata: %+v", r.ID, r)
		}
		if _, ok := ruleMeta[r.ID]; !ok {
			t.Errorf("rule %q has no ruleMeta entry", r.ID)
		}
	}
}

// TestSARIFFixes: eliminated warnings carry the fix; surviving
// warnings and files without a repair do not. A repair report without
// patches (refused or nothing verified) attaches nothing.
func TestSARIFFixes(t *testing.T) {
	results, repairs := goldenInput()
	log := SARIFWithFixes(results, repairs)
	res := log.Runs[0].Results
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2", len(res))
	}
	// Result order is (file, line): after-frontier at line 3 first.
	fixed, surviving := res[0], res[1]
	if fixed.RuleID != "after-frontier" || len(fixed.Fixes) != 1 {
		t.Fatalf("eliminated warning lacks its fix: %+v", fixed)
	}
	fix := fixed.Fixes[0]
	if len(fix.ArtifactChanges) != 1 || fix.ArtifactChanges[0].ArtifactLocation.URI != "buggy.chpl" {
		t.Fatalf("fix artifactChanges: %+v", fix)
	}
	reps := fix.ArtifactChanges[0].Replacements
	if len(reps) == 0 {
		t.Fatal("fix has no replacements")
	}
	sawInsertion := false
	for _, r := range reps {
		if r.DeletedRegion.StartLine == 0 {
			t.Fatalf("replacement without a region: %+v", r)
		}
		if r.InsertedContent != nil && r.DeletedRegion.StartColumn == 1 && r.DeletedRegion.EndColumn == 1 {
			sawInsertion = true
		}
	}
	if !sawInsertion {
		t.Error("token-chain fix should contain zero-width insertions")
	}
	if len(surviving.Fixes) != 0 {
		t.Fatalf("surviving warning must not carry a fix: %+v", surviving)
	}

	// No repair entry -> no fixes at all.
	plain := SARIFWithFixes(results, nil)
	for _, r := range plain.Runs[0].Results {
		if len(r.Fixes) != 0 {
			t.Fatalf("fixes attached without a repair: %+v", r)
		}
	}
}
