package wire

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"uafcheck"
)

const uafSrc = `proc leak() {
  var x: int = 1;
  begin with (ref x) {
    x = 2;
  }
}
`

const cleanSrc = `proc ok() {
  var d$: sync bool;
  var x: int = 1;
  begin with (ref x) {
    x = 2;
    d$ = true;
  }
  d$;
}
`

func analyze(t *testing.T, name, src string) *uafcheck.Report {
	t.Helper()
	rep, err := uafcheck.Analyze(name, src)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return rep
}

// TestStatusOf pins the status vocabulary shared with internal/batch.
func TestStatusOf(t *testing.T) {
	mk := func(reason uafcheck.DegradeReason) *uafcheck.Report {
		return &uafcheck.Report{Degraded: &uafcheck.Degradation{Reason: reason}}
	}
	cases := []struct {
		rep  *uafcheck.Report
		err  error
		want string
	}{
		{&uafcheck.Report{}, nil, "ok"},
		{nil, uafcheck.ErrFrontend, "error"},
		{nil, nil, "error"},
		{mk(uafcheck.DegradeBudget), nil, "degraded"},
		{mk(uafcheck.DegradeCancelled), nil, "degraded"},
		{mk(uafcheck.DegradeDeadline), nil, "timed-out"},
		{mk(uafcheck.DegradePanic), nil, "crashed"},
	}
	for _, c := range cases {
		if got := StatusOf(c.rep, c.err); got != c.want {
			t.Errorf("StatusOf(%+v, %v) = %q, want %q", c.rep, c.err, got, c.want)
		}
	}
}

// TestNewResultCanonical checks the canonical encoding's invariants:
// metrics stripped, warnings sorted, the input report untouched, and
// repeated encodings byte-identical.
func TestNewResultCanonical(t *testing.T) {
	rep := analyze(t, "leak.chpl", uafSrc)
	if len(rep.Warnings) == 0 {
		t.Fatal("expected a warning from the leak source")
	}
	if rep.Metrics.Counters == nil {
		t.Fatal("expected live metrics on the report")
	}

	res := NewResult("leak.chpl", rep, nil, false)
	if res.Status != "ok" || res.Metrics != nil {
		t.Fatalf("canonical result: status=%q metrics=%v", res.Status, res.Metrics)
	}
	if len(res.Report.Metrics.Counters) != 0 || len(res.Report.Metrics.Spans) != 0 {
		t.Error("canonical report still carries volatile metrics")
	}
	if rep.Metrics.Counters == nil {
		t.Error("NewResult mutated the caller's report")
	}

	a, err := res.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewResult("leak.chpl", rep, nil, false).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("re-encoding differs:\n%s\n%s", a, b)
	}
	if bytes.HasSuffix(a, []byte("\n")) {
		t.Error("Encode emitted a trailing newline")
	}

	// In-band metrics are opt-in and travel in the side field.
	rm := NewResult("leak.chpl", rep, nil, true)
	if rm.Metrics == nil || rm.Metrics.Counters["analysis.procs"] == 0 {
		t.Error("includeMetrics did not carry the snapshot")
	}
}

// TestSARIFShape validates the document skeleton and the ordering
// guarantees.
func TestSARIFShape(t *testing.T) {
	repA := analyze(t, "b_leak.chpl", uafSrc)
	repB := analyze(t, "a_clean.chpl", cleanSrc)
	results := []Result{
		NewResult("b_leak.chpl", repA, nil, false),
		NewResult("a_clean.chpl", repB, nil, false),
	}

	log := SARIF(results)
	if log.Schema != SARIFSchema || log.Version != SARIFVersion {
		t.Fatalf("schema/version: %q %q", log.Schema, log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "uafcheck" || run.Tool.Driver.Version != uafcheck.Version {
		t.Errorf("driver = %+v", run.Tool.Driver)
	}
	if len(run.Results) != len(repA.Warnings) {
		t.Fatalf("results = %d, want %d", len(run.Results), len(repA.Warnings))
	}
	for _, r := range run.Results {
		if r.RuleID == "" || r.Message.Text == "" || len(r.Locations) != 1 {
			t.Errorf("incomplete result %+v", r)
		}
		found := false
		for _, rule := range run.Tool.Driver.Rules {
			if rule.ID == r.RuleID {
				found = true
			}
		}
		if !found {
			t.Errorf("result rule %q missing from the catalogue", r.RuleID)
		}
	}

	// Input order must not leak into the document: reversing the result
	// list yields identical bytes.
	rev := []Result{results[1], results[0]}
	a, _ := SARIF(results).EncodeIndent()
	b, _ := SARIF(rev).EncodeIndent()
	if !bytes.Equal(a, b) {
		t.Error("SARIF output depends on input order")
	}
	if !json.Valid(a) {
		t.Error("SARIF output is not valid JSON")
	}
	if !strings.HasSuffix(string(a), "\n") {
		t.Error("EncodeIndent missing trailing newline")
	}
}

// TestSARIFEmpty: no findings still yields a valid document with empty
// (not null) rules and results arrays.
func TestSARIFEmpty(t *testing.T) {
	rep := analyze(t, "clean.chpl", cleanSrc)
	b, err := SARIF([]Result{NewResult("clean.chpl", rep, nil, false)}).EncodeIndent()
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	if !strings.Contains(s, `"rules": []`) || !strings.Contains(s, `"results": []`) {
		t.Errorf("empty SARIF has null arrays:\n%s", s)
	}
}
