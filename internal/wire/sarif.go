// SARIF 2.1.0 projection of analysis warnings, for code-scanning UIs
// (GitHub code scanning, VS Code SARIF viewers). One rule per warning
// kind; one result per warning, located at the file:line:col of the
// outer-variable access.
package wire

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"uafcheck"
	"uafcheck/internal/udiff"
)

// SARIFSchema and SARIFVersion pin the emitted format.
const (
	SARIFSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	SARIFVersion = "2.1.0"
)

// SARIFLog is the document root.
type SARIFLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []SARIFRun `json:"runs"`
}

// SARIFRun is one tool invocation.
type SARIFRun struct {
	Tool    SARIFTool     `json:"tool"`
	Results []SARIFResult `json:"results"`
}

// SARIFTool identifies the analyzer.
type SARIFTool struct {
	Driver SARIFDriver `json:"driver"`
}

// SARIFDriver carries the tool name, version and rule catalogue.
type SARIFDriver struct {
	Name           string      `json:"name"`
	Version        string      `json:"version"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []SARIFRule `json:"rules"`
}

// SARIFRule describes one warning kind. Every referenced kind ships
// its full metadata triple — id, shortDescription, helpUri — so
// code-scanning UIs can render a "learn more" link next to each
// finding; the golden-file test in sarif_test.go pins this shape.
type SARIFRule struct {
	ID               string       `json:"id"`
	ShortDescription SARIFMessage `json:"shortDescription"`
	HelpURI          string       `json:"helpUri,omitempty"`
}

// SARIFResult is one reported warning.
type SARIFResult struct {
	RuleID     string          `json:"ruleId"`
	Level      string          `json:"level"`
	Message    SARIFMessage    `json:"message"`
	Locations  []SARIFLocation `json:"locations"`
	Fixes      []SARIFFix      `json:"fixes,omitempty"`
	Properties map[string]any  `json:"properties,omitempty"`
}

// SARIFFix is one verified repair proposal: the patch that eliminates
// this result, expressed as line-region replacements against the
// original artifact so a code-scanning UI can offer it one click from
// the warning.
type SARIFFix struct {
	Description     SARIFMessage          `json:"description"`
	ArtifactChanges []SARIFArtifactChange `json:"artifactChanges"`
}

// SARIFArtifactChange groups the replacements applied to one file.
type SARIFArtifactChange struct {
	ArtifactLocation SARIFArtifactLocation `json:"artifactLocation"`
	Replacements     []SARIFReplacement    `json:"replacements"`
}

// SARIFReplacement deletes deletedRegion and inserts insertedContent
// in its place. A pure insertion uses a zero-width region (startLine
// with startColumn == endColumn == 1).
type SARIFReplacement struct {
	DeletedRegion   SARIFRegion           `json:"deletedRegion"`
	InsertedContent *SARIFArtifactContent `json:"insertedContent,omitempty"`
}

// SARIFArtifactContent carries inserted text.
type SARIFArtifactContent struct {
	Text string `json:"text"`
}

// SARIFMessage wraps a plain-text message.
type SARIFMessage struct {
	Text string `json:"text"`
}

// SARIFLocation is a physical file location.
type SARIFLocation struct {
	PhysicalLocation SARIFPhysicalLocation `json:"physicalLocation"`
}

// SARIFPhysicalLocation pairs an artifact with a region.
type SARIFPhysicalLocation struct {
	ArtifactLocation SARIFArtifactLocation `json:"artifactLocation"`
	Region           SARIFRegion           `json:"region"`
}

// SARIFArtifactLocation names the analyzed file.
type SARIFArtifactLocation struct {
	URI string `json:"uri"`
}

// SARIFRegion is a 1-based source region: the access position for
// result locations, a deleted line range for fix replacements.
type SARIFRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
	EndLine     int `json:"endLine,omitempty"`
	EndColumn   int `json:"endColumn,omitempty"`
}

// ruleMeta is the per-kind rule metadata (description prose plus the
// help link into this repo's docs). Unknown kinds still get a rule
// entry with the kind as its description, so the document always
// validates.
type ruleMetadata struct {
	desc    string
	helpURI string
}

var ruleMeta = map[string]ruleMetadata{
	"after-frontier": {
		desc: "Outer-variable access can execute after the " +
			"variable's parallel frontier: the enclosing scope may have " +
			"already freed it (use-after-free).",
		helpURI: "docs/ALGORITHM.md#after-frontier",
	},
	"never-synchronized": {
		desc: "No explored execution orders the access " +
			"before the parent scope's exit: the task is never synchronized " +
			"with the variable's lifetime.",
		helpURI: "docs/ALGORITHM.md#never-synchronized",
	},
}

// SARIF projects per-file results into one SARIF 2.1.0 log with a
// single run. Results are ordered (file, line, column, variable) and
// the rule catalogue lists each referenced kind exactly once, so the
// document is byte-deterministic for a given input set. Conservative
// (degradation-ladder) warnings downgrade to level "note" and carry a
// "conservative": true property — they flag unproven safety, not a
// proven bug.
func SARIF(results []Result) *SARIFLog {
	return SARIFWithFixes(results, nil)
}

// SARIFWithFixes is SARIF with verified repair patches embedded as
// `fixes` objects. repairs maps a result Name to that file's repair
// report; every warning the repair ELIMINATED gets a fix whose
// replacements rewrite the original file into the fully repaired one
// (the cumulative diff, so the applied fix is exactly what the
// verifier blessed — applying a prefix of the patch chain was never
// verified as a unit). Warnings still present in the repaired source
// get no fix, and files without an entry (repair refused, degraded,
// or not attempted) emit plain results — a degraded analysis never
// serves a patch.
func SARIFWithFixes(results []Result, repairs map[string]*uafcheck.RepairReport) *SARIFLog {
	kinds := map[string]bool{}
	var out []SARIFResult
	for _, fr := range results {
		if fr.Report == nil {
			continue
		}
		// remaining counts the warning keys the repair could NOT
		// eliminate; every other warning carries the fix.
		var fix []SARIFFix
		var remaining map[string]int
		if rr := repairs[fr.Name]; rr != nil && len(rr.Patches) > 0 {
			if f, ok := sarifFix(fr.Name, rr); ok {
				fix = []SARIFFix{f}
				remaining = make(map[string]int, len(rr.Remaining))
				for _, w := range rr.Remaining {
					remaining[sarifWarnKey(w)]++
				}
			}
		}
		for _, w := range fr.Report.Warnings {
			kinds[w.Reason] = true
			level := "warning"
			var props map[string]any
			if w.Conservative {
				level = "note"
				props = map[string]any{"conservative": true}
			}
			var fixes []SARIFFix
			if fix != nil {
				if k := sarifWarnKey(w); remaining[k] > 0 {
					remaining[k]--
				} else {
					fixes = fix
				}
			}
			out = append(out, SARIFResult{
				RuleID:  w.Reason,
				Level:   level,
				Message: SARIFMessage{Text: w.String()},
				Locations: []SARIFLocation{{
					PhysicalLocation: SARIFPhysicalLocation{
						ArtifactLocation: SARIFArtifactLocation{URI: fr.Name},
						Region: SARIFRegion{
							StartLine:   w.AccessLine,
							StartColumn: w.AccessCol,
						},
					},
				}},
				Fixes:      fixes,
				Properties: props,
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		al, bl := a.Locations[0].PhysicalLocation, b.Locations[0].PhysicalLocation
		if al.ArtifactLocation.URI != bl.ArtifactLocation.URI {
			return al.ArtifactLocation.URI < bl.ArtifactLocation.URI
		}
		if al.Region.StartLine != bl.Region.StartLine {
			return al.Region.StartLine < bl.Region.StartLine
		}
		return al.Region.StartColumn < bl.Region.StartColumn
	})

	var rules []SARIFRule
	for kind := range kinds {
		meta := ruleMeta[kind]
		if meta.desc == "" {
			meta.desc = kind
		}
		rules = append(rules, SARIFRule{
			ID:               kind,
			ShortDescription: SARIFMessage{Text: meta.desc},
			HelpURI:          meta.helpURI,
		})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	if rules == nil {
		rules = []SARIFRule{}
	}
	if out == nil {
		out = []SARIFResult{}
	}

	return &SARIFLog{
		Schema:  SARIFSchema,
		Version: SARIFVersion,
		Runs: []SARIFRun{{
			Tool: SARIFTool{Driver: SARIFDriver{
				Name:    "uafcheck",
				Version: uafcheck.Version,
				Rules:   rules,
			}},
			Results: out,
		}},
	}
}

// sarifWarnKey identifies a warning stably across the reflow a patch
// causes: positions shift, but (proc, task, var, reason, rw) survive.
func sarifWarnKey(w uafcheck.Warning) string {
	rw := "r"
	if w.Write {
		rw = "w"
	}
	return w.Proc + "\x00" + w.Task + "\x00" + w.Var + "\x00" + w.Reason + "\x00" + rw
}

// sarifFix converts a repair report's cumulative diff into one SARIF
// fix: line-region replacements against the original artifact. It
// reports ok=false when the diff is empty or unparsable (no fix is
// better than a wrong fix).
func sarifFix(name string, rr *uafcheck.RepairReport) (SARIFFix, bool) {
	edits, err := udiff.EditsFromDiff(rr.Diff)
	if err != nil || len(edits) == 0 {
		return SARIFFix{}, false
	}
	var reps []SARIFReplacement
	for _, e := range edits {
		var region SARIFRegion
		if e.EndA >= e.StartA {
			region = SARIFRegion{StartLine: e.StartA, EndLine: e.EndA}
		} else {
			// Pure insertion: zero-width region before StartA.
			region = SARIFRegion{StartLine: e.StartA, StartColumn: 1, EndLine: e.StartA, EndColumn: 1}
		}
		rep := SARIFReplacement{DeletedRegion: region}
		if len(e.Inserted) > 0 {
			rep.InsertedContent = &SARIFArtifactContent{Text: strings.Join(e.Inserted, "\n") + "\n"}
		}
		reps = append(reps, rep)
	}
	var strategies []string
	seen := map[string]bool{}
	for _, p := range rr.Patches {
		if !seen[p.Strategy] {
			seen[p.Strategy] = true
			strategies = append(strategies, p.Strategy)
		}
	}
	desc := fmt.Sprintf("uafcheck verified repair (%s): %d -> %d warnings",
		strings.Join(strategies, ", "), rr.InitialWarnings, rr.RemainingWarnings)
	return SARIFFix{
		Description: SARIFMessage{Text: desc},
		ArtifactChanges: []SARIFArtifactChange{{
			ArtifactLocation: SARIFArtifactLocation{URI: name},
			Replacements:     reps,
		}},
	}, true
}

// EncodeIndent renders the log as indented JSON (what -format=sarif
// prints), with a trailing newline.
func (l *SARIFLog) EncodeIndent() ([]byte, error) {
	b, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
