// SARIF 2.1.0 projection of analysis warnings, for code-scanning UIs
// (GitHub code scanning, VS Code SARIF viewers). One rule per warning
// kind; one result per warning, located at the file:line:col of the
// outer-variable access.
package wire

import (
	"encoding/json"
	"sort"

	"uafcheck"
)

// SARIFSchema and SARIFVersion pin the emitted format.
const (
	SARIFSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	SARIFVersion = "2.1.0"
)

// SARIFLog is the document root.
type SARIFLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []SARIFRun `json:"runs"`
}

// SARIFRun is one tool invocation.
type SARIFRun struct {
	Tool    SARIFTool     `json:"tool"`
	Results []SARIFResult `json:"results"`
}

// SARIFTool identifies the analyzer.
type SARIFTool struct {
	Driver SARIFDriver `json:"driver"`
}

// SARIFDriver carries the tool name, version and rule catalogue.
type SARIFDriver struct {
	Name           string      `json:"name"`
	Version        string      `json:"version"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []SARIFRule `json:"rules"`
}

// SARIFRule describes one warning kind.
type SARIFRule struct {
	ID               string       `json:"id"`
	ShortDescription SARIFMessage `json:"shortDescription"`
}

// SARIFResult is one reported warning.
type SARIFResult struct {
	RuleID     string          `json:"ruleId"`
	Level      string          `json:"level"`
	Message    SARIFMessage    `json:"message"`
	Locations  []SARIFLocation `json:"locations"`
	Properties map[string]any  `json:"properties,omitempty"`
}

// SARIFMessage wraps a plain-text message.
type SARIFMessage struct {
	Text string `json:"text"`
}

// SARIFLocation is a physical file location.
type SARIFLocation struct {
	PhysicalLocation SARIFPhysicalLocation `json:"physicalLocation"`
}

// SARIFPhysicalLocation pairs an artifact with a region.
type SARIFPhysicalLocation struct {
	ArtifactLocation SARIFArtifactLocation `json:"artifactLocation"`
	Region           SARIFRegion           `json:"region"`
}

// SARIFArtifactLocation names the analyzed file.
type SARIFArtifactLocation struct {
	URI string `json:"uri"`
}

// SARIFRegion is the 1-based source region of the access.
type SARIFRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// ruleDescriptions maps the warning kinds (Warning.Reason) to their
// rule prose. Unknown kinds still get a rule entry with the kind as
// its description, so the document always validates.
var ruleDescriptions = map[string]string{
	"after-frontier": "Outer-variable access can execute after the " +
		"variable's parallel frontier: the enclosing scope may have " +
		"already freed it (use-after-free).",
	"never-synchronized": "No explored execution orders the access " +
		"before the parent scope's exit: the task is never synchronized " +
		"with the variable's lifetime.",
}

// SARIF projects per-file results into one SARIF 2.1.0 log with a
// single run. Results are ordered (file, line, column, variable) and
// the rule catalogue lists each referenced kind exactly once, so the
// document is byte-deterministic for a given input set. Conservative
// (degradation-ladder) warnings downgrade to level "note" and carry a
// "conservative": true property — they flag unproven safety, not a
// proven bug.
func SARIF(results []Result) *SARIFLog {
	kinds := map[string]bool{}
	var out []SARIFResult
	for _, fr := range results {
		if fr.Report == nil {
			continue
		}
		for _, w := range fr.Report.Warnings {
			kinds[w.Reason] = true
			level := "warning"
			var props map[string]any
			if w.Conservative {
				level = "note"
				props = map[string]any{"conservative": true}
			}
			out = append(out, SARIFResult{
				RuleID:  w.Reason,
				Level:   level,
				Message: SARIFMessage{Text: w.String()},
				Locations: []SARIFLocation{{
					PhysicalLocation: SARIFPhysicalLocation{
						ArtifactLocation: SARIFArtifactLocation{URI: fr.Name},
						Region: SARIFRegion{
							StartLine:   w.AccessLine,
							StartColumn: w.AccessCol,
						},
					},
				}},
				Properties: props,
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		al, bl := a.Locations[0].PhysicalLocation, b.Locations[0].PhysicalLocation
		if al.ArtifactLocation.URI != bl.ArtifactLocation.URI {
			return al.ArtifactLocation.URI < bl.ArtifactLocation.URI
		}
		if al.Region.StartLine != bl.Region.StartLine {
			return al.Region.StartLine < bl.Region.StartLine
		}
		return al.Region.StartColumn < bl.Region.StartColumn
	})

	var rules []SARIFRule
	for kind := range kinds {
		desc := ruleDescriptions[kind]
		if desc == "" {
			desc = kind
		}
		rules = append(rules, SARIFRule{ID: kind, ShortDescription: SARIFMessage{Text: desc}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	if rules == nil {
		rules = []SARIFRule{}
	}
	if out == nil {
		out = []SARIFResult{}
	}

	return &SARIFLog{
		Schema:  SARIFSchema,
		Version: SARIFVersion,
		Runs: []SARIFRun{{
			Tool: SARIFTool{Driver: SARIFDriver{
				Name:    "uafcheck",
				Version: uafcheck.Version,
				Rules:   rules,
			}},
			Results: out,
		}},
	}
}

// EncodeIndent renders the log as indented JSON (what -format=sarif
// prints), with a trailing newline.
func (l *SARIFLog) EncodeIndent() ([]byte, error) {
	b, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
