package ir

import (
	"strings"
	"testing"

	"uafcheck/internal/ast"
	"uafcheck/internal/parser"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

func lower(t *testing.T, src string) (*Program, *source.Diagnostics) {
	t.Helper()
	diags := &source.Diagnostics{}
	mod := parser.ParseSource("t.chpl", src, diags)
	if diags.HasErrors() {
		t.Fatalf("parse:\n%s", diags)
	}
	info := sym.Resolve(mod, diags)
	if diags.HasErrors() {
		t.Fatalf("resolve:\n%s", diags)
	}
	return Lower(info, mod.Procs[len(mod.Procs)-1], diags), diags
}

// flatten renders the instruction tree as a compact op list for shape
// assertions, e.g. "decl(x) access(x,R) syncop(readFE done$)".
func flatten(b *Block) []string {
	var out []string
	for _, in := range b.Instrs {
		switch x := in.(type) {
		case *Decl:
			out = append(out, "decl("+x.Sym.Name+")")
		case *Access:
			rw := "R"
			if x.Write {
				rw = "W"
			}
			out = append(out, "access("+x.Sym.Name+","+rw+")")
		case *SyncOp:
			out = append(out, "syncop("+x.Op.String()+" "+x.Sym.Name+")")
		case *AtomicOp:
			out = append(out, "atomic("+x.Op.String()+" "+x.Sym.Name+")")
		case *Begin:
			out = append(out, "begin["+strings.Join(flatten(x.Body), " ")+"]")
		case *SyncRegion:
			out = append(out, "syncregion["+strings.Join(flatten(x.Body), " ")+"]")
		case *If:
			s := "if[" + strings.Join(flatten(x.Then), " ") + "]"
			if x.Else != nil {
				s += "else[" + strings.Join(flatten(x.Else), " ") + "]"
			}
			out = append(out, s)
		case *Region:
			out = append(out, "region["+strings.Join(flatten(x.Body), " ")+"]")
		case *Loop:
			tag := "loop"
			if x.Subsumed {
				tag = "loop-subsumed"
			}
			out = append(out, tag+"["+strings.Join(flatten(x.Body), " ")+"]")
		case *Call:
			out = append(out, "call("+x.Callee+")")
		case *Return:
			out = append(out, "return")
		}
	}
	return out
}

func shape(t *testing.T, src string) string {
	t.Helper()
	prog, _ := lower(t, src)
	return strings.Join(flatten(prog.Root), " ")
}

func TestSyncAssignSugar(t *testing.T) {
	got := shape(t, `proc f() {
	  var done$: sync bool;
	  done$ = true;
	  done$;
	}`)
	want := "decl(done$) syncop(writeEF done$) syncop(readFE done$)"
	if got != want {
		t.Errorf("shape = %s, want %s", got, want)
	}
}

func TestSingleReadLowersToReadFF(t *testing.T) {
	got := shape(t, `proc f() {
	  var s$: single bool;
	  s$.writeEF(true);
	  var v: bool = s$;
	}`)
	want := "decl(s$) syncop(writeEF s$) syncop(readFF s$) decl(v)"
	if got != want {
		t.Errorf("shape = %s, want %s", got, want)
	}
}

func TestCompoundAssignReadsThenWrites(t *testing.T) {
	got := shape(t, `proc f() {
	  var x: int = 1;
	  x += 2;
	  x = 5;
	}`)
	want := "decl(x) access(x,R) access(x,W) access(x,W)"
	if got != want {
		t.Errorf("shape = %s, want %s", got, want)
	}
}

func TestIncDecLowering(t *testing.T) {
	got := shape(t, `proc f() { var x: int = 0; x++; }`)
	want := "decl(x) access(x,R) access(x,W)"
	if got != want {
		t.Errorf("shape = %s, want %s", got, want)
	}
}

func TestAtomicOps(t *testing.T) {
	got := shape(t, `proc f() {
	  var a: atomic int;
	  a.write(1);
	  var v: int = a.read();
	  a.fetchAdd(2);
	}`)
	want := "decl(a) atomic(write a) atomic(read a) decl(v) atomic(write a)"
	if got != want {
		t.Errorf("shape = %s, want %s", got, want)
	}
}

func TestBeginInIntentSnapshotsInParent(t *testing.T) {
	got := shape(t, `proc f() {
	  var x: int = 1;
	  begin with (in x) { writeln(x); }
	}`)
	// The parent reads x once (the snapshot); inside the task the copy is
	// declared and accessed.
	want := "decl(x) access(x,R) begin[decl(x) access(x,R)]"
	if got != want {
		t.Errorf("shape = %s, want %s", got, want)
	}
}

func TestNestedProcInlining(t *testing.T) {
	got := shape(t, `proc f() {
	  var x: int = 1;
	  proc bump() { x += 1; }
	  begin { bump(); }
	}`)
	// The nested proc body is inlined inside the begin, exposing the
	// hidden outer access (§III-A).
	want := "decl(x) begin[region[access(x,R) access(x,W)]]"
	if got != want {
		t.Errorf("shape = %s, want %s", got, want)
	}
}

func TestInlineByRefParamSubstitution(t *testing.T) {
	got := shape(t, `proc f() {
	  var x: int = 1;
	  proc set(ref target: int) { target = 9; }
	  begin { set(x); }
	}`)
	want := "decl(x) begin[region[access(x,W)]]"
	if got != want {
		t.Errorf("shape = %s, want %s", got, want)
	}
}

func TestInlineByValueParamIsLocal(t *testing.T) {
	got := shape(t, `proc f() {
	  var x: int = 1;
	  proc show(v: int) { writeln(v); }
	  begin { show(x); }
	}`)
	// The argument is evaluated in the caller (access to x inside the
	// begin), then v is a local of the inlined region.
	want := "decl(x) begin[access(x,R) region[decl(v) access(v,R)]]"
	if got != want {
		t.Errorf("shape = %s, want %s", got, want)
	}
}

func TestRecursionCutoff(t *testing.T) {
	prog, diags := lower(t, `proc f() {
	  var x: int = 1;
	  proc rec(n: int) {
	    x += n;
	    rec(n - 1);
	  }
	  begin { rec(3); }
	}`)
	note := false
	for _, d := range diags.All() {
		if d.Severity == source.Note && strings.Contains(d.Message, "recursive nested procedure") {
			note = true
		}
	}
	if !note {
		t.Error("recursion cutoff not reported")
	}
	// The body must have been inlined exactly once (no infinite
	// expansion): one region containing rec's body.
	s := strings.Join(flatten(prog.Root), " ")
	if strings.Count(s, "access(x,W)") != 1 {
		t.Errorf("expected exactly one inlined copy, got %s", s)
	}
}

func TestMutualNestedRecursionCutoff(t *testing.T) {
	_, diags := lower(t, `proc f() {
	  var x: int = 1;
	  proc a() { x += 1; b(); }
	  proc b() { x += 2; a(); }
	  begin { a(); }
	}`)
	note := 0
	for _, d := range diags.All() {
		if strings.Contains(d.Message, "recursive nested procedure") {
			note++
		}
	}
	if note == 0 {
		t.Error("mutual recursion not detected")
	}
}

func TestTopLevelCallStaysOpaque(t *testing.T) {
	got := shape(t, `proc helper() { writeln(1); }
	proc f() {
	  helper();
	}`)
	want := "call(helper)"
	if got != want {
		t.Errorf("shape = %s, want %s", got, want)
	}
}

func TestLoopWithAccessesOnlyCollapses(t *testing.T) {
	got := shape(t, `proc f() {
	  var x: int = 0;
	  for i in 1..3 { x += i; }
	}`)
	// Compound assignment reads the left side, evaluates the right side,
	// then writes.
	want := "decl(x) loop[decl(i) access(x,R) access(i,R) access(x,W)]"
	if got != want {
		t.Errorf("shape = %s, want %s", got, want)
	}
}

func TestLoopWithSyncSubsumed(t *testing.T) {
	prog, diags := lower(t, `proc f() {
	  var x: int = 0;
	  var done$: sync bool;
	  while (x < 3) {
	    x += 1;
	    done$ = true;
	  }
	}`)
	note := false
	for _, d := range diags.All() {
		if strings.Contains(d.Message, "subsumes the loop") {
			note = true
		}
	}
	if !note {
		t.Error("loop subsumption not reported (§IV-A)")
	}
	s := strings.Join(flatten(prog.Root), " ")
	if !strings.Contains(s, "loop-subsumed[") {
		t.Errorf("loop not subsumed: %s", s)
	}
	// The subsumed body keeps accesses but drops the sync op.
	if strings.Contains(s, "syncop") {
		t.Errorf("sync op survived subsumption: %s", s)
	}
}

func TestLoopWithBeginSubsumed(t *testing.T) {
	_, diags := lower(t, `proc f() {
	  var x: int = 0;
	  for i in 1..2 {
	    begin with (ref x) { writeln(x); }
	  }
	}`)
	note := false
	for _, d := range diags.All() {
		if strings.Contains(d.Message, "subsumes the loop") {
			note = true
		}
	}
	if !note {
		t.Error("loop containing begin not subsumed")
	}
}

func TestIfElseLowering(t *testing.T) {
	got := shape(t, `proc f() {
	  var x: int = 0;
	  if (x > 1) { x = 2; } else { x = 3; }
	}`)
	want := "decl(x) access(x,R) if[access(x,W)]else[access(x,W)]"
	if got != want {
		t.Errorf("shape = %s, want %s", got, want)
	}
}

func TestSyncRegionLowering(t *testing.T) {
	got := shape(t, `proc f() {
	  var x: int = 0;
	  sync {
	    begin with (ref x) { x = 1; }
	  }
	}`)
	want := "decl(x) syncregion[begin[access(x,W)]]"
	if got != want {
		t.Errorf("shape = %s, want %s", got, want)
	}
}

func TestRefParamsRecorded(t *testing.T) {
	prog, _ := lower(t, `proc f(ref a: int, b: int) {
	  begin { writeln(a); }
	}`)
	if len(prog.RefParams) != 1 || prog.RefParams[0].Name != "a" {
		t.Errorf("RefParams = %v", prog.RefParams)
	}
}

func TestConfigAccessNotTracked(t *testing.T) {
	got := shape(t, `config const flag = true;
	proc f() {
	  if (flag) { writeln(1); }
	}`)
	want := "if[]"
	if got != want {
		t.Errorf("shape = %s, want %s (config reads are lifetime-safe)", got, want)
	}
}

func TestWritelnArgsEvaluated(t *testing.T) {
	got := shape(t, `proc f() {
	  var x: int = 1;
	  var y: int = 2;
	  writeln(x + y, x);
	}`)
	want := "decl(x) decl(y) access(x,R) access(y,R) access(x,R)"
	if got != want {
		t.Errorf("shape = %s, want %s", got, want)
	}
}

func TestReturnMarker(t *testing.T) {
	got := shape(t, `proc f(): int {
	  var x: int = 1;
	  return x;
	}`)
	want := "decl(x) access(x,R) return"
	if got != want {
		t.Errorf("shape = %s, want %s", got, want)
	}
}

func TestEndSpanPointsAtClosingBrace(t *testing.T) {
	src := "proc f() { writeln(1); }"
	prog, _ := lower(t, src)
	if !prog.EndSpan.IsValid() {
		t.Fatal("EndSpan invalid")
	}
	if src[prog.EndSpan.Start] != '}' {
		t.Errorf("EndSpan points at %q", src[prog.EndSpan.Start])
	}
}

var _ = ast.Print // silence potential unused import if assertions change
