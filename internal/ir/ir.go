// Package ir lowers resolved MiniChapel procedures into the concurrency
// intermediate form the CCFG is built from.
//
// The lowering mirrors what the paper's pass sees in the Chapel IR (§III:
// "the special read/write functions for sync and single are embedded in"):
//
//   - reads and writes of sync/single variables become explicit readFE /
//     readFF / writeEF operations;
//   - atomic-variable operations become explicit atomic ops (recorded but
//     deliberately NOT treated as synchronization, matching §IV-A — this
//     is the paper's main source of false positives);
//   - nested procedures are inlined at their call sites with a call-stack
//     recursion cutoff (§III-A), exposing hidden outer-variable accesses;
//   - calls to non-nested procedures stay opaque (partial
//     inter-procedural analysis);
//   - loops containing sync ops or begins are subsumed into a single node
//     and reported as an analysis limit; loops with only variable accesses
//     collapse to a single region (§IV-A).
package ir

import (
	"uafcheck/internal/ast"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

// Instr is one lowered instruction.
type Instr interface {
	Span() source.Span
}

// Decl marks a variable declaration: the symbol becomes local to the
// current task frame and its scope ends where the declaring block ends.
type Decl struct {
	Sym *sym.Symbol
	Sp  source.Span
}

// Access is a read or write of a plain variable. Whether it is an
// outer-variable access depends on the task context at CCFG time.
type Access struct {
	Sym   *sym.Symbol
	Write bool
	Sp    source.Span
}

// SyncOp is a blocking synchronization operation on a sync/single
// variable: readFE, readFF or writeEF.
type SyncOp struct {
	Sym *sym.Symbol
	Op  sym.SyncOpKind
	Sp  source.Span
}

// AtomicOp is a non-blocking atomic operation. The static analysis records
// but does not model it (paper §IV-A) unless the atomics extension is on;
// the dynamic oracle always models it.
type AtomicOp struct {
	Sym *sym.Symbol
	Op  sym.SyncOpKind
	// Arg is the constant operand when the source supplies one (the
	// waitFor threshold, the fetchAdd increment, the written value);
	// HasArg distinguishes a present constant from none. The counting
	// refinement needs these; non-constant operands stay unmodelled.
	Arg    int64
	HasArg bool
	// Method is the source-level method name, for diagnostics.
	Method string
	Sp     source.Span
}

// Begin creates a fire-and-forget task executing Body.
type Begin struct {
	Label string
	Body  *Block
	Stmt  *ast.BeginStmt
	Sp    source.Span
}

// SyncRegion is a sync { } block: the executing task blocks at the end of
// the region until every task created inside it (transitively) completes.
type SyncRegion struct {
	Body *Block
	Sp   source.Span
}

// If is a two-way branch; condition accesses are emitted before it.
// Else may be nil, meaning the else path is an empty skip.
type If struct {
	Then *Block
	Else *Block
	Sp   source.Span
}

// Region is an unconditional nested block: a plain `{ }` block or an
// inlined nested-procedure body. It opens a scope but never forks control.
type Region struct {
	Body *Block
	Sp   source.Span
}

// Loop is a collapsed loop region (paper §IV-A). When Subsumed is true the
// body contained sync ops or begins that the analysis cannot model; the
// retained body holds only the loop's variable accesses.
type Loop struct {
	Body     *Block
	Subsumed bool
	Sp       source.Span
}

// Call marks an opaque call to a non-inlined (top-level) procedure.
// Module-mode lowering additionally records the callee symbol and the
// by-ref actuals so per-procedure summaries can be applied at the call
// boundary; single-file analysis ignores both fields.
type Call struct {
	Callee string
	// CalleeSym is the resolved procedure symbol (possibly a linker
	// extern from another file of the module). Nil when unresolved.
	CalleeSym *sym.Symbol
	// RefArgs lists the by-ref parameter positions whose actual is a
	// variable, with the caller-side symbol after inline substitution.
	RefArgs []RefArg
	Sp      source.Span
}

// RefArg binds one by-ref formal position to the actual variable
// passed at a call site.
type RefArg struct {
	Index int
	Sym   *sym.Symbol
}

// ParamEffects is the per-formal slice of a procedure summary visible
// at the call boundary: whether the callee (transitively) reads or
// writes the by-ref formal from the calling task (Direct*) or from a
// fire-and-forget task that may outlive the call (Esc*). Positions
// that are not by-ref are all-false.
type ParamEffects struct {
	DirectRead  bool
	DirectWrite bool
	EscRead     bool
	EscWrite    bool
}

// Zero reports whether the effect slice is empty.
func (e ParamEffects) Zero() bool {
	return !e.DirectRead && !e.DirectWrite && !e.EscRead && !e.EscWrite
}

// Esc reports whether any escaping effect is present.
func (e ParamEffects) Esc() bool { return e.EscRead || e.EscWrite }

// Return marks a return statement. The lowering keeps it as a marker; a
// non-tail return is reported as an analysis limit.
type Return struct {
	Sp source.Span
}

func (i *Decl) Span() source.Span       { return i.Sp }
func (i *Access) Span() source.Span     { return i.Sp }
func (i *SyncOp) Span() source.Span     { return i.Sp }
func (i *AtomicOp) Span() source.Span   { return i.Sp }
func (i *Begin) Span() source.Span      { return i.Sp }
func (i *SyncRegion) Span() source.Span { return i.Sp }
func (i *If) Span() source.Span         { return i.Sp }
func (i *Region) Span() source.Span     { return i.Sp }
func (i *Loop) Span() source.Span       { return i.Sp }
func (i *Call) Span() source.Span       { return i.Sp }
func (i *Return) Span() source.Span     { return i.Sp }

// Block is a straight-line instruction sequence with an associated lexical
// scope (used to delimit variable lifetimes).
type Block struct {
	Scope  *sym.Scope
	Instrs []Instr
}

// Program is the lowered form of one root procedure.
type Program struct {
	Proc *ast.ProcDecl
	Info *sym.Info
	Root *Block
	// RefParams lists the by-ref formals of the root procedure; the
	// analysis driver may mark them synced when every call site is
	// enclosed in a sync block (paper §III-A, synced-scope list).
	RefParams []*sym.Symbol
	// EndSpan locates the procedure's closing brace — the "end of parent
	// scope" of proc-level variables (Node 10 in the paper's Figure 2).
	EndSpan source.Span
	// Truncated records that the recursion cutoff fired while expanding
	// nested procedures (paper §III-A): a cyclic nested-call chain was
	// stopped, so the analysis of this procedure is a partial view.
	// Summary-mode lowering falls back to the per-site inliner on such
	// cycles, so the flag means the same thing in both modes.
	Truncated bool
}
