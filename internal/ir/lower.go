package ir

import (
	"fmt"

	"uafcheck/internal/ast"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

// LowerOptions selects the nested-procedure expansion strategy and the
// optional module-level call-boundary effects.
type LowerOptions struct {
	// Inline forces the legacy per-call-site inliner with its recursion
	// cutoff. The default (false) lowers each nested procedure once into
	// a reusable template and instantiates it per call site; the output
	// is byte-identical, and lowering falls back to the inliner for the
	// whole root when a nested-call cycle would make a template
	// context-dependent.
	Inline bool
	// Effects, when non-nil, supplies per-procedure summaries for
	// module-level (non-nested) callees: the returned slice is indexed
	// by parameter position. Lowering splices the callee's boundary
	// effects on by-ref actuals right after the opaque Call, so sync
	// enclosure, loop subsumption and task scoping apply to them
	// exactly as to local code. A nil func or nil return keeps the
	// call fully opaque (single-file behavior).
	Effects func(callee *ast.ProcDecl) []ParamEffects
}

// Lower produces the IR Program for one root procedure using the
// default summary (template) expansion.
func Lower(info *sym.Info, proc *ast.ProcDecl, diags *source.Diagnostics) *Program {
	return LowerWith(info, proc, diags, LowerOptions{})
}

// LowerWith is Lower with explicit options.
func LowerWith(info *sym.Info, proc *ast.ProcDecl, diags *source.Diagnostics, opt LowerOptions) *Program {
	if opt.Inline {
		lw := &lowerer{info: info, diags: diags, file: info.Module.File, opts: opt}
		return lw.lowerRoot(proc)
	}
	// Summary attempt: capture notes so a late cycle discovery can
	// discard the whole attempt without double-emitting.
	lw := &lowerer{info: info, diags: diags, file: info.Module.File, opts: opt,
		templates: make(map[*ast.ProcDecl]*template),
		building:  make(map[*ast.ProcDecl]bool),
	}
	var captured []capNote
	lw.sink = func(sp source.Span, msg string) {
		captured = append(captured, capNote{sp: sp, msg: msg})
	}
	p := lw.lowerRoot(proc)
	if lw.cycle {
		// A nested-call cycle makes the recursion-cutoff shape depend on
		// the call chain, which a context-free template cannot express.
		// Re-lower the whole root with the per-site inliner so the
		// output (including the cutoff notes) matches inline mode.
		legacy := &lowerer{info: info, diags: diags, file: info.Module.File,
			opts: LowerOptions{Inline: true, Effects: opt.Effects}}
		return legacy.lowerRoot(proc)
	}
	for _, n := range captured {
		diags.Addf(lw.file, n.sp, source.Note, "%s", n.msg)
	}
	return p
}

func (lw *lowerer) lowerRoot(proc *ast.ProcDecl) *Program {
	p := &Program{Proc: proc, Info: lw.info}
	scope := lw.info.ScopeFor(proc)
	root := &Block{Scope: scope}
	for _, prm := range proc.Params {
		s := lw.info.Uses[prm.Name]
		if s == nil {
			continue
		}
		root.Instrs = append(root.Instrs, &Decl{Sym: s, Sp: prm.Name.Sp})
		if s.ByRef {
			p.RefParams = append(p.RefParams, s)
		}
	}
	lw.stmts(root, proc.Body.Stmts)
	p.Root = root
	end := proc.Body.Span().End
	p.EndSpan = source.Span{Start: end - 1, End: end}
	p.Truncated = lw.truncated
	return p
}

type lowerer struct {
	info  *sym.Info
	diags *source.Diagnostics
	file  *source.File
	opts  LowerOptions
	// subst maps by-ref formals of inlined procedures to the actual
	// argument variables at the active call site.
	subst map[*sym.Symbol]*sym.Symbol
	// inlining is the call stack used for recursion detection in legacy
	// inline mode (§III-A).
	inlining []*ast.ProcDecl
	// sink, when set, receives notes instead of diags — used to record
	// template notes for replay and to make the summary attempt
	// discardable.
	sink func(sp source.Span, msg string)
	// templates memoizes the once-lowered body of each nested procedure
	// (summary mode only).
	templates map[*ast.ProcDecl]*template
	building  map[*ast.ProcDecl]bool
	// cycle is set when template construction hits a nested-call cycle;
	// the summary attempt is then discarded in favor of the inliner.
	cycle bool
	// truncated is set when the legacy recursion cutoff fires.
	truncated bool
}

// capNote is a recorded diagnostic note: the message is preformatted so
// replaying it cannot depend on call-site context.
type capNote struct {
	sp  source.Span
	msg string
}

// template is the per-procedure summary of a nested procedure at the IR
// level: its body lowered once under the identity substitution, plus
// the notes that lowering emitted (replayed at every instantiation,
// matching the per-site inliner).
type template struct {
	body  *Block
	notes []capNote
}

func (lw *lowerer) note(sp source.Span, format string, args ...any) {
	if lw.sink != nil {
		lw.sink(sp, fmt.Sprintf(format, args...))
		return
	}
	lw.diags.Addf(lw.file, sp, source.Note, format, args...)
}

// resolve follows the substitution chain for inlined ref formals.
func (lw *lowerer) resolve(s *sym.Symbol) *sym.Symbol {
	for s != nil {
		t, ok := lw.subst[s]
		if !ok {
			return s
		}
		s = t
	}
	return s
}

func (lw *lowerer) stmts(b *Block, list []ast.Stmt) {
	for _, s := range list {
		lw.stmt(b, s)
	}
}

func (lw *lowerer) stmt(b *Block, s ast.Stmt) {
	switch x := s.(type) {
	case *ast.VarDecl:
		if x.Init != nil {
			lw.expr(b, x.Init)
		}
		if sm := lw.info.Uses[x.Name]; sm != nil {
			b.Instrs = append(b.Instrs, &Decl{Sym: sm, Sp: x.Name.Sp})
		}
	case *ast.AssignStmt:
		lw.assign(b, x)
	case *ast.IncDecStmt:
		sm := lw.info.Uses[x.X]
		if sm == nil {
			return
		}
		sm = lw.resolve(sm)
		if sm.IsSyncVar() || sm.IsAtomic() {
			lw.note(x.Sp, "%s on %s variable %s is not modelled", x.Op, sm.Type.Qual, sm.Name)
			return
		}
		// x++ reads then writes the location.
		b.Instrs = append(b.Instrs,
			&Access{Sym: sm, Write: false, Sp: x.X.Sp},
			&Access{Sym: sm, Write: true, Sp: x.X.Sp})
	case *ast.ExprStmt:
		lw.expr(b, x.X)
	case *ast.CallStmt:
		lw.expr(b, x.X)
	case *ast.BeginStmt:
		lw.begin(b, x)
	case *ast.SyncStmt:
		inner := &Block{Scope: lw.info.ScopeFor(x)}
		lw.stmts(inner, x.Body.Stmts)
		b.Instrs = append(b.Instrs, &SyncRegion{Body: inner, Sp: x.Sp})
	case *ast.IfStmt:
		lw.expr(b, x.Cond)
		then := &Block{Scope: lw.info.ScopeFor(x.Then)}
		lw.stmts(then, x.Then.Stmts)
		var els *Block
		if x.Else != nil {
			els = &Block{Scope: lw.info.ScopeFor(x.Else)}
			lw.stmts(els, x.Else.Stmts)
		}
		b.Instrs = append(b.Instrs, &If{Then: then, Else: els, Sp: x.Sp})
	case *ast.WhileStmt:
		lw.expr(b, x.Cond)
		lw.loop(b, lw.info.ScopeFor(x), x.Body.Stmts, x.Sp)
	case *ast.ForStmt:
		lw.expr(b, x.Range.Lo)
		lw.expr(b, x.Range.Hi)
		scope := lw.info.ScopeFor(x)
		body := []ast.Stmt(x.Body.Stmts)
		lw.loopWithVar(b, scope, lw.info.Uses[x.Var], body, x.Sp)
	case *ast.ReturnStmt:
		if x.Value != nil {
			lw.expr(b, x.Value)
		}
		b.Instrs = append(b.Instrs, &Return{Sp: x.Sp})
	case *ast.BlockStmt:
		inner := &Block{Scope: lw.info.ScopeFor(x)}
		lw.stmts(inner, x.Stmts)
		b.Instrs = append(b.Instrs, &Region{Body: inner, Sp: x.Sp})
	case *ast.ProcStmt:
		// Nested procedure definitions generate no code; bodies are
		// inlined at call sites.
	}
}

func (lw *lowerer) loop(b *Block, scope *sym.Scope, body []ast.Stmt, sp source.Span) {
	lw.loopWithVar(b, scope, nil, body, sp)
}

func (lw *lowerer) loopWithVar(b *Block, scope *sym.Scope, loopVar *sym.Symbol, body []ast.Stmt, sp source.Span) {
	inner := &Block{Scope: scope}
	if loopVar != nil {
		inner.Instrs = append(inner.Instrs, &Decl{Sym: loopVar, Sp: sp})
	}
	lw.stmts(inner, body)
	if blockHasConcurrency(inner) {
		// §IV-A: loops containing a sync node or a begin task edge are
		// not supported; the loop is subsumed into a single node that
		// retains only the variable accesses.
		lw.note(sp, "loop body contains sync operations or begin tasks; "+
			"the analysis subsumes the loop into a single node (paper §IV-A)")
		flat := &Block{Scope: scope}
		flattenAccesses(inner, flat)
		b.Instrs = append(b.Instrs, &Loop{Body: flat, Subsumed: true, Sp: sp})
		return
	}
	// A loop with only variable accesses is treated as a single node when
	// no synchronization event separates first and last iteration — which
	// is guaranteed here since the body has no sync events at all.
	b.Instrs = append(b.Instrs, &Loop{Body: inner, Subsumed: false, Sp: sp})
}

// blockHasConcurrency reports whether the block (recursively) contains
// sync ops, atomic ops, begins or sync regions.
func blockHasConcurrency(b *Block) bool {
	for _, in := range b.Instrs {
		switch x := in.(type) {
		case *SyncOp, *AtomicOp, *Begin, *SyncRegion:
			return true
		case *If:
			if blockHasConcurrency(x.Then) {
				return true
			}
			if x.Else != nil && blockHasConcurrency(x.Else) {
				return true
			}
		case *Loop:
			if blockHasConcurrency(x.Body) {
				return true
			}
		case *Region:
			if blockHasConcurrency(x.Body) {
				return true
			}
		}
	}
	return false
}

// flattenAccesses copies every Access and Decl from src (recursively,
// ignoring control structure) into dst, preserving order.
func flattenAccesses(src *Block, dst *Block) {
	for _, in := range src.Instrs {
		switch x := in.(type) {
		case *Access:
			dst.Instrs = append(dst.Instrs, x)
		case *Decl:
			dst.Instrs = append(dst.Instrs, x)
		case *If:
			flattenAccesses(x.Then, dst)
			if x.Else != nil {
				flattenAccesses(x.Else, dst)
			}
		case *Loop:
			flattenAccesses(x.Body, dst)
		case *Begin:
			flattenAccesses(x.Body, dst)
		case *SyncRegion:
			flattenAccesses(x.Body, dst)
		case *Region:
			flattenAccesses(x.Body, dst)
		}
	}
}

func (lw *lowerer) assign(b *Block, x *ast.AssignStmt) {
	lhs := lw.info.Uses[x.Lhs]
	if lhs == nil {
		lw.expr(b, x.Rhs)
		return
	}
	lhs = lw.resolve(lhs)
	// Compound assignment reads the left side first.
	if x.Op != "=" && !lhs.IsSyncVar() && !lhs.IsAtomic() {
		b.Instrs = append(b.Instrs, &Access{Sym: lhs, Write: false, Sp: x.Lhs.Sp})
	}
	lw.expr(b, x.Rhs)
	switch {
	case lhs.IsSyncVar():
		// `done$ = v` is the Chapel sugar for done$.writeEF(v).
		b.Instrs = append(b.Instrs, &SyncOp{Sym: lhs, Op: sym.OpWriteEF, Sp: x.Sp})
	case lhs.IsAtomic():
		a := &AtomicOp{Sym: lhs, Op: sym.OpAtomicWrite, Method: "write", Sp: x.Sp}
		if lit, ok := x.Rhs.(*ast.IntLit); ok {
			a.Arg, a.HasArg = lit.Value, true
		}
		b.Instrs = append(b.Instrs, a)
	default:
		b.Instrs = append(b.Instrs, &Access{Sym: lhs, Write: true, Sp: x.Lhs.Sp})
	}
}

func (lw *lowerer) begin(b *Block, x *ast.BeginStmt) {
	body := &Block{Scope: lw.info.ScopeFor(x)}
	// `in`-intent copies: the copy is initialized from the outer variable
	// at task-creation time, in the PARENT's context — that read is an
	// ordinary (safe) parent access, then the copy becomes task-local.
	for _, w := range x.With {
		outer := lw.info.Uses[w.Name]
		if outer == nil || outer.IsSyncVar() {
			continue
		}
		if w.Intent == ast.IntentIn {
			outer = lw.resolve(outer)
			b.Instrs = append(b.Instrs, &Access{Sym: outer, Write: false, Sp: w.Name.Sp})
			if cp := lw.info.CopyFor[x][lw.info.Uses[w.Name]]; cp != nil {
				body.Instrs = append(body.Instrs, &Decl{Sym: cp, Sp: w.Name.Sp})
			}
		}
	}
	lw.stmts(body, x.Body.Stmts)
	b.Instrs = append(b.Instrs, &Begin{Label: x.Label, Body: body, Stmt: x, Sp: x.Sp})
}

// ---------------------------------------------------------------- exprs

func (lw *lowerer) expr(b *Block, e ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident:
		sm := lw.info.Uses[x]
		if sm == nil {
			return
		}
		sm = lw.resolve(sm)
		switch {
		case sm.Kind == sym.KindProc:
			// Bare proc reference: no access.
		case sm.Type.Qual == ast.QualSync:
			// Bare read of a sync variable: blocking readFE.
			b.Instrs = append(b.Instrs, &SyncOp{Sym: sm, Op: sym.OpReadFE, Sp: x.Sp})
		case sm.Type.Qual == ast.QualSingle:
			// Bare read of a single variable: blocking readFF.
			b.Instrs = append(b.Instrs, &SyncOp{Sym: sm, Op: sym.OpReadFF, Sp: x.Sp})
		case sm.IsAtomic():
			b.Instrs = append(b.Instrs, &AtomicOp{Sym: sm, Op: sym.OpAtomicRead, Sp: x.Sp})
		case sm.Kind == sym.KindConfig:
			// Config constants have program lifetime: never a hazard.
		default:
			b.Instrs = append(b.Instrs, &Access{Sym: sm, Write: false, Sp: x.Sp})
		}
	case *ast.BinaryExpr:
		lw.expr(b, x.X)
		lw.expr(b, x.Y)
	case *ast.UnaryExpr:
		lw.expr(b, x.X)
	case *ast.RangeExpr:
		lw.expr(b, x.Lo)
		lw.expr(b, x.Hi)
	case *ast.CallExpr:
		lw.call(b, x)
	case *ast.MethodCallExpr:
		for _, a := range x.Args {
			lw.expr(b, a)
		}
		recv := lw.info.Uses[x.Recv]
		if recv == nil {
			return
		}
		recv = lw.resolve(recv)
		op := lw.info.MethodOps[x]
		switch op {
		case sym.OpReadFE, sym.OpReadFF, sym.OpWriteEF:
			b.Instrs = append(b.Instrs, &SyncOp{Sym: recv, Op: op, Sp: x.Sp})
		case sym.OpAtomicRead, sym.OpAtomicWrite, sym.OpAtomicWait:
			a := &AtomicOp{Sym: recv, Op: op, Method: x.Method, Sp: x.Sp}
			if len(x.Args) > 0 {
				if lit, ok := x.Args[0].(*ast.IntLit); ok {
					a.Arg, a.HasArg = lit.Value, true
				}
			}
			b.Instrs = append(b.Instrs, a)
		}
	case *ast.IntLit, *ast.BoolLit, *ast.StringLit:
		// Leaves.
	}
}

func (lw *lowerer) call(b *Block, x *ast.CallExpr) {
	// Builtins: evaluate arguments only.
	if sym.IsBuiltin(x.Fun.Name) {
		for _, a := range x.Args {
			lw.expr(b, a)
		}
		return
	}
	callee := lw.info.Uses[x.Fun]
	if callee == nil || callee.Proc == nil {
		for _, a := range x.Args {
			lw.expr(b, a)
		}
		return
	}
	proc := callee.Proc
	nested := callee.Scope.Kind != sym.ScopeModule
	if !nested {
		// Partial inter-procedural analysis (§III): calls to non-nested
		// procedures are opaque — except that module-mode lowering
		// splices the callee's summarized boundary effects in right
		// after the call.
		for _, a := range x.Args {
			lw.expr(b, a)
		}
		c := &Call{Callee: proc.Name.Name, CalleeSym: callee, Sp: x.Sp}
		for i, prm := range proc.Params {
			if !prm.ByRef || i >= len(x.Args) {
				continue
			}
			if id, ok := x.Args[i].(*ast.Ident); ok {
				if actual := lw.info.Uses[id]; actual != nil {
					c.RefArgs = append(c.RefArgs, RefArg{Index: i, Sym: lw.resolve(actual)})
				}
			}
		}
		b.Instrs = append(b.Instrs, c)
		lw.spliceEffects(b, c, proc)
		return
	}
	if lw.opts.Inline {
		// Recursion cutoff (§III-A): stop inlining on a cycle.
		for _, active := range lw.inlining {
			if active == proc {
				lw.note(x.Sp, "recursive nested procedure %q: inlining stopped (paper §III-A)", proc.Name.Name)
				lw.truncated = true
				for _, a := range x.Args {
					lw.expr(b, a)
				}
				return
			}
		}
		lw.inline(b, proc, x)
		return
	}
	lw.summaryCall(b, proc, x)
}

// spliceEffects applies the callee's summary at an opaque call
// boundary: direct effects become ordinary caller-task accesses, and
// escaping effects are wrapped in a synthetic fire-and-forget task so
// the CCFG scopes them like any local begin (sync enclosure, loop
// subsumption and task lifetimes all apply unchanged).
func (lw *lowerer) spliceEffects(b *Block, c *Call, proc *ast.ProcDecl) {
	if lw.opts.Effects == nil || len(c.RefArgs) == 0 {
		return
	}
	effects := lw.opts.Effects(proc)
	if effects == nil {
		return
	}
	var escBody *Block
	for _, ra := range c.RefArgs {
		if ra.Index >= len(effects) {
			continue
		}
		e := effects[ra.Index]
		if e.DirectRead {
			b.Instrs = append(b.Instrs, &Access{Sym: ra.Sym, Write: false, Sp: c.Sp})
		}
		if e.DirectWrite {
			b.Instrs = append(b.Instrs, &Access{Sym: ra.Sym, Write: true, Sp: c.Sp})
		}
		if e.EscRead || e.EscWrite {
			if escBody == nil {
				escBody = &Block{Scope: b.Scope}
			}
			if e.EscRead {
				escBody.Instrs = append(escBody.Instrs, &Access{Sym: ra.Sym, Write: false, Sp: c.Sp})
			}
			if e.EscWrite {
				escBody.Instrs = append(escBody.Instrs, &Access{Sym: ra.Sym, Write: true, Sp: c.Sp})
			}
		}
	}
	if escBody != nil {
		b.Instrs = append(b.Instrs, &Begin{
			Label: fmt.Sprintf("tasks escaping %s()", proc.Name.Name),
			Body:  escBody,
			Sp:    c.Sp,
		})
	}
}

// inline copies the nested procedure's lowered body at the call site
// (§III-A: "we copy the entire sub-graph of the embedded function at all
// call sites to maintain the context sensitivity").
func (lw *lowerer) inline(b *Block, proc *ast.ProcDecl, call *ast.CallExpr) {
	if len(call.Args) != len(proc.Params) {
		lw.note(call.Sp, "call to %q passes %d arguments for %d parameters",
			proc.Name.Name, len(call.Args), len(proc.Params))
	}
	savedSubst := lw.subst
	newSubst := make(map[*sym.Symbol]*sym.Symbol, len(savedSubst)+len(proc.Params))
	for k, v := range savedSubst {
		newSubst[k] = v
	}
	inlineBlock := &Block{Scope: lw.info.ScopeFor(proc)}
	for i, prm := range proc.Params {
		formal := lw.info.Uses[prm.Name]
		if formal == nil || i >= len(call.Args) {
			continue
		}
		arg := call.Args[i]
		if prm.ByRef {
			// A by-ref formal aliases the actual variable: substitute so
			// accesses inside the body target the caller's symbol.
			if id, ok := arg.(*ast.Ident); ok {
				if actual := lw.info.Uses[id]; actual != nil {
					newSubst[formal] = lw.resolve(actual)
					continue
				}
			}
			lw.note(arg.Span(), "by-ref argument to %q is not a variable; treated by value", proc.Name.Name)
		}
		// By-value formal: evaluate the argument in the caller, then the
		// formal becomes a local of the inlined region.
		lw.expr(b, arg)
		inlineBlock.Instrs = append(inlineBlock.Instrs, &Decl{Sym: formal, Sp: prm.Name.Sp})
	}
	lw.subst = newSubst
	lw.inlining = append(lw.inlining, proc)
	lw.stmts(inlineBlock, proc.Body.Stmts)
	lw.inlining = lw.inlining[:len(lw.inlining)-1]
	lw.subst = savedSubst
	// Splice the inlined body as a control-transparent region.
	b.Instrs = append(b.Instrs, &Region{Body: inlineBlock, Sp: call.Sp})
}

// ------------------------------------------- summary-mode nested calls

// summaryCall expands a nested-procedure call from the callee's
// template. The per-site prologue (argument-count note, by-ref
// substitution, caller-side evaluation of by-value arguments) is
// byte-identical to the legacy inliner; only the body comes from the
// template, instantiated by a deep copy under the site's substitution.
func (lw *lowerer) summaryCall(b *Block, proc *ast.ProcDecl, call *ast.CallExpr) {
	tpl := lw.templateFor(proc)
	if len(call.Args) != len(proc.Params) {
		lw.note(call.Sp, "call to %q passes %d arguments for %d parameters",
			proc.Name.Name, len(call.Args), len(proc.Params))
	}
	newSubst := make(map[*sym.Symbol]*sym.Symbol, len(lw.subst)+len(proc.Params))
	for k, v := range lw.subst {
		newSubst[k] = v
	}
	region := &Block{Scope: lw.info.ScopeFor(proc)}
	for i, prm := range proc.Params {
		formal := lw.info.Uses[prm.Name]
		if formal == nil || i >= len(call.Args) {
			continue
		}
		arg := call.Args[i]
		if prm.ByRef {
			if id, ok := arg.(*ast.Ident); ok {
				if actual := lw.info.Uses[id]; actual != nil {
					newSubst[formal] = lw.resolve(actual)
					continue
				}
			}
			lw.note(arg.Span(), "by-ref argument to %q is not a variable; treated by value", proc.Name.Name)
		}
		lw.expr(b, arg)
		region.Instrs = append(region.Instrs, &Decl{Sym: formal, Sp: prm.Name.Sp})
	}
	if tpl == nil {
		// A cycle poisoned this callee's template; the whole root is
		// about to be re-lowered by the inliner, so just stop expanding
		// (guarantees termination of the doomed attempt).
		return
	}
	if substPlain(newSubst) {
		for _, in := range tpl.body.Instrs {
			region.Instrs = append(region.Instrs, copyInstr(in, newSubst))
		}
		for _, n := range tpl.notes {
			lw.note(n.sp, "%s", n.msg)
		}
		b.Instrs = append(b.Instrs, &Region{Body: region, Sp: call.Sp})
		return
	}
	// Ineligible site: a substituted symbol changes instruction
	// classification (sync/single/atomic/config actual), so the template
	// copy would be wrong. Lower the body for this one site, exactly
	// like the inliner.
	saved := lw.subst
	lw.subst = newSubst
	lw.stmts(region, proc.Body.Stmts)
	lw.subst = saved
	b.Instrs = append(b.Instrs, &Region{Body: region, Sp: call.Sp})
}

// templateFor returns the memoized template of a nested procedure,
// lowering its body once (under the identity substitution, with notes
// recorded for replay). Returns nil and sets lw.cycle when the
// procedure participates in a nested-call cycle.
func (lw *lowerer) templateFor(proc *ast.ProcDecl) *template {
	if t, ok := lw.templates[proc]; ok {
		return t
	}
	if lw.building[proc] {
		lw.cycle = true
		return nil
	}
	lw.building[proc] = true
	savedSubst, savedSink := lw.subst, lw.sink
	var notes []capNote
	lw.subst = nil
	lw.sink = func(sp source.Span, msg string) {
		notes = append(notes, capNote{sp: sp, msg: msg})
	}
	body := &Block{Scope: lw.info.ScopeFor(proc)}
	lw.stmts(body, proc.Body.Stmts)
	lw.subst, lw.sink = savedSubst, savedSink
	delete(lw.building, proc)
	if lw.cycle {
		lw.templates[proc] = nil
		return nil
	}
	t := &template{body: body, notes: notes}
	lw.templates[proc] = t
	return t
}

// substPlain reports whether every mapping in the substitution is
// plain-variable to plain-variable — the condition under which a
// template copy classifies every instruction exactly as per-site
// lowering would.
func substPlain(m map[*sym.Symbol]*sym.Symbol) bool {
	for k, v := range m {
		if !plainSym(k) || !plainSym(v) {
			return false
		}
	}
	return true
}

func plainSym(s *sym.Symbol) bool {
	return s.Kind != sym.KindProc && s.Kind != sym.KindConfig &&
		s.Type.Qual == ast.QualNone && !s.IsAtomic()
}

// copyInstr deep-copies one instruction, rewriting substituted symbols.
// Scopes, AST back-pointers and symbols stay shared — exactly what the
// per-site inliner produces, which shares formal and local symbols
// across call sites through sym.Info.
func copyInstr(in Instr, subst map[*sym.Symbol]*sym.Symbol) Instr {
	switch x := in.(type) {
	case *Access:
		if t, ok := subst[x.Sym]; ok {
			return &Access{Sym: t, Write: x.Write, Sp: x.Sp}
		}
		c := *x
		return &c
	case *Decl:
		c := *x
		return &c
	case *SyncOp:
		c := *x
		return &c
	case *AtomicOp:
		c := *x
		return &c
	case *Return:
		c := *x
		return &c
	case *Call:
		c := &Call{Callee: x.Callee, CalleeSym: x.CalleeSym, Sp: x.Sp}
		for _, ra := range x.RefArgs {
			if t, ok := subst[ra.Sym]; ok {
				ra.Sym = t
			}
			c.RefArgs = append(c.RefArgs, ra)
		}
		return c
	case *Begin:
		return &Begin{Label: x.Label, Body: copyBlock(x.Body, subst), Stmt: x.Stmt, Sp: x.Sp}
	case *SyncRegion:
		return &SyncRegion{Body: copyBlock(x.Body, subst), Sp: x.Sp}
	case *Region:
		return &Region{Body: copyBlock(x.Body, subst), Sp: x.Sp}
	case *Loop:
		return &Loop{Body: copyBlock(x.Body, subst), Subsumed: x.Subsumed, Sp: x.Sp}
	case *If:
		c := &If{Then: copyBlock(x.Then, subst), Sp: x.Sp}
		if x.Else != nil {
			c.Else = copyBlock(x.Else, subst)
		}
		return c
	}
	return in
}

func copyBlock(b *Block, subst map[*sym.Symbol]*sym.Symbol) *Block {
	nb := &Block{Scope: b.Scope, Instrs: make([]Instr, 0, len(b.Instrs))}
	for _, in := range b.Instrs {
		nb.Instrs = append(nb.Instrs, copyInstr(in, subst))
	}
	return nb
}
