package ir

import (
	"uafcheck/internal/ast"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

// Lower produces the IR Program for one root procedure.
func Lower(info *sym.Info, proc *ast.ProcDecl, diags *source.Diagnostics) *Program {
	lw := &lowerer{info: info, diags: diags, file: info.Module.File}
	p := &Program{Proc: proc, Info: info}
	scope := info.ScopeFor(proc)
	root := &Block{Scope: scope}
	for _, prm := range proc.Params {
		s := info.Uses[prm.Name]
		if s == nil {
			continue
		}
		root.Instrs = append(root.Instrs, &Decl{Sym: s, Sp: prm.Name.Sp})
		if s.ByRef {
			p.RefParams = append(p.RefParams, s)
		}
	}
	lw.stmts(root, proc.Body.Stmts)
	p.Root = root
	end := proc.Body.Span().End
	p.EndSpan = source.Span{Start: end - 1, End: end}
	return p
}

type lowerer struct {
	info  *sym.Info
	diags *source.Diagnostics
	file  *source.File
	// subst maps by-ref formals of inlined procedures to the actual
	// argument variables at the active call site.
	subst map[*sym.Symbol]*sym.Symbol
	// inlining is the call stack used for recursion detection (§III-A).
	inlining []*ast.ProcDecl
}

func (lw *lowerer) note(sp source.Span, format string, args ...any) {
	lw.diags.Addf(lw.file, sp, source.Note, format, args...)
}

// resolve follows the substitution chain for inlined ref formals.
func (lw *lowerer) resolve(s *sym.Symbol) *sym.Symbol {
	for s != nil {
		t, ok := lw.subst[s]
		if !ok {
			return s
		}
		s = t
	}
	return s
}

func (lw *lowerer) stmts(b *Block, list []ast.Stmt) {
	for _, s := range list {
		lw.stmt(b, s)
	}
}

func (lw *lowerer) stmt(b *Block, s ast.Stmt) {
	switch x := s.(type) {
	case *ast.VarDecl:
		if x.Init != nil {
			lw.expr(b, x.Init)
		}
		if sm := lw.info.Uses[x.Name]; sm != nil {
			b.Instrs = append(b.Instrs, &Decl{Sym: sm, Sp: x.Name.Sp})
		}
	case *ast.AssignStmt:
		lw.assign(b, x)
	case *ast.IncDecStmt:
		sm := lw.info.Uses[x.X]
		if sm == nil {
			return
		}
		sm = lw.resolve(sm)
		if sm.IsSyncVar() || sm.IsAtomic() {
			lw.note(x.Sp, "%s on %s variable %s is not modelled", x.Op, sm.Type.Qual, sm.Name)
			return
		}
		// x++ reads then writes the location.
		b.Instrs = append(b.Instrs,
			&Access{Sym: sm, Write: false, Sp: x.X.Sp},
			&Access{Sym: sm, Write: true, Sp: x.X.Sp})
	case *ast.ExprStmt:
		lw.expr(b, x.X)
	case *ast.CallStmt:
		lw.expr(b, x.X)
	case *ast.BeginStmt:
		lw.begin(b, x)
	case *ast.SyncStmt:
		inner := &Block{Scope: lw.info.ScopeFor(x)}
		lw.stmts(inner, x.Body.Stmts)
		b.Instrs = append(b.Instrs, &SyncRegion{Body: inner, Sp: x.Sp})
	case *ast.IfStmt:
		lw.expr(b, x.Cond)
		then := &Block{Scope: lw.info.ScopeFor(x.Then)}
		lw.stmts(then, x.Then.Stmts)
		var els *Block
		if x.Else != nil {
			els = &Block{Scope: lw.info.ScopeFor(x.Else)}
			lw.stmts(els, x.Else.Stmts)
		}
		b.Instrs = append(b.Instrs, &If{Then: then, Else: els, Sp: x.Sp})
	case *ast.WhileStmt:
		lw.expr(b, x.Cond)
		lw.loop(b, lw.info.ScopeFor(x), x.Body.Stmts, x.Sp)
	case *ast.ForStmt:
		lw.expr(b, x.Range.Lo)
		lw.expr(b, x.Range.Hi)
		scope := lw.info.ScopeFor(x)
		body := []ast.Stmt(x.Body.Stmts)
		lw.loopWithVar(b, scope, lw.info.Uses[x.Var], body, x.Sp)
	case *ast.ReturnStmt:
		if x.Value != nil {
			lw.expr(b, x.Value)
		}
		b.Instrs = append(b.Instrs, &Return{Sp: x.Sp})
	case *ast.BlockStmt:
		inner := &Block{Scope: lw.info.ScopeFor(x)}
		lw.stmts(inner, x.Stmts)
		b.Instrs = append(b.Instrs, &Region{Body: inner, Sp: x.Sp})
	case *ast.ProcStmt:
		// Nested procedure definitions generate no code; bodies are
		// inlined at call sites.
	}
}

func (lw *lowerer) loop(b *Block, scope *sym.Scope, body []ast.Stmt, sp source.Span) {
	lw.loopWithVar(b, scope, nil, body, sp)
}

func (lw *lowerer) loopWithVar(b *Block, scope *sym.Scope, loopVar *sym.Symbol, body []ast.Stmt, sp source.Span) {
	inner := &Block{Scope: scope}
	if loopVar != nil {
		inner.Instrs = append(inner.Instrs, &Decl{Sym: loopVar, Sp: sp})
	}
	lw.stmts(inner, body)
	if blockHasConcurrency(inner) {
		// §IV-A: loops containing a sync node or a begin task edge are
		// not supported; the loop is subsumed into a single node that
		// retains only the variable accesses.
		lw.note(sp, "loop body contains sync operations or begin tasks; "+
			"the analysis subsumes the loop into a single node (paper §IV-A)")
		flat := &Block{Scope: scope}
		flattenAccesses(inner, flat)
		b.Instrs = append(b.Instrs, &Loop{Body: flat, Subsumed: true, Sp: sp})
		return
	}
	// A loop with only variable accesses is treated as a single node when
	// no synchronization event separates first and last iteration — which
	// is guaranteed here since the body has no sync events at all.
	b.Instrs = append(b.Instrs, &Loop{Body: inner, Subsumed: false, Sp: sp})
}

// blockHasConcurrency reports whether the block (recursively) contains
// sync ops, atomic ops, begins or sync regions.
func blockHasConcurrency(b *Block) bool {
	for _, in := range b.Instrs {
		switch x := in.(type) {
		case *SyncOp, *AtomicOp, *Begin, *SyncRegion:
			return true
		case *If:
			if blockHasConcurrency(x.Then) {
				return true
			}
			if x.Else != nil && blockHasConcurrency(x.Else) {
				return true
			}
		case *Loop:
			if blockHasConcurrency(x.Body) {
				return true
			}
		case *Region:
			if blockHasConcurrency(x.Body) {
				return true
			}
		}
	}
	return false
}

// flattenAccesses copies every Access and Decl from src (recursively,
// ignoring control structure) into dst, preserving order.
func flattenAccesses(src *Block, dst *Block) {
	for _, in := range src.Instrs {
		switch x := in.(type) {
		case *Access:
			dst.Instrs = append(dst.Instrs, x)
		case *Decl:
			dst.Instrs = append(dst.Instrs, x)
		case *If:
			flattenAccesses(x.Then, dst)
			if x.Else != nil {
				flattenAccesses(x.Else, dst)
			}
		case *Loop:
			flattenAccesses(x.Body, dst)
		case *Begin:
			flattenAccesses(x.Body, dst)
		case *SyncRegion:
			flattenAccesses(x.Body, dst)
		case *Region:
			flattenAccesses(x.Body, dst)
		}
	}
}

func (lw *lowerer) assign(b *Block, x *ast.AssignStmt) {
	lhs := lw.info.Uses[x.Lhs]
	if lhs == nil {
		lw.expr(b, x.Rhs)
		return
	}
	lhs = lw.resolve(lhs)
	// Compound assignment reads the left side first.
	if x.Op != "=" && !lhs.IsSyncVar() && !lhs.IsAtomic() {
		b.Instrs = append(b.Instrs, &Access{Sym: lhs, Write: false, Sp: x.Lhs.Sp})
	}
	lw.expr(b, x.Rhs)
	switch {
	case lhs.IsSyncVar():
		// `done$ = v` is the Chapel sugar for done$.writeEF(v).
		b.Instrs = append(b.Instrs, &SyncOp{Sym: lhs, Op: sym.OpWriteEF, Sp: x.Sp})
	case lhs.IsAtomic():
		a := &AtomicOp{Sym: lhs, Op: sym.OpAtomicWrite, Method: "write", Sp: x.Sp}
		if lit, ok := x.Rhs.(*ast.IntLit); ok {
			a.Arg, a.HasArg = lit.Value, true
		}
		b.Instrs = append(b.Instrs, a)
	default:
		b.Instrs = append(b.Instrs, &Access{Sym: lhs, Write: true, Sp: x.Lhs.Sp})
	}
}

func (lw *lowerer) begin(b *Block, x *ast.BeginStmt) {
	body := &Block{Scope: lw.info.ScopeFor(x)}
	// `in`-intent copies: the copy is initialized from the outer variable
	// at task-creation time, in the PARENT's context — that read is an
	// ordinary (safe) parent access, then the copy becomes task-local.
	for _, w := range x.With {
		outer := lw.info.Uses[w.Name]
		if outer == nil || outer.IsSyncVar() {
			continue
		}
		if w.Intent == ast.IntentIn {
			outer = lw.resolve(outer)
			b.Instrs = append(b.Instrs, &Access{Sym: outer, Write: false, Sp: w.Name.Sp})
			if cp := lw.info.CopyFor[x][lw.info.Uses[w.Name]]; cp != nil {
				body.Instrs = append(body.Instrs, &Decl{Sym: cp, Sp: w.Name.Sp})
			}
		}
	}
	lw.stmts(body, x.Body.Stmts)
	b.Instrs = append(b.Instrs, &Begin{Label: x.Label, Body: body, Stmt: x, Sp: x.Sp})
}

// ---------------------------------------------------------------- exprs

func (lw *lowerer) expr(b *Block, e ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident:
		sm := lw.info.Uses[x]
		if sm == nil {
			return
		}
		sm = lw.resolve(sm)
		switch {
		case sm.Kind == sym.KindProc:
			// Bare proc reference: no access.
		case sm.Type.Qual == ast.QualSync:
			// Bare read of a sync variable: blocking readFE.
			b.Instrs = append(b.Instrs, &SyncOp{Sym: sm, Op: sym.OpReadFE, Sp: x.Sp})
		case sm.Type.Qual == ast.QualSingle:
			// Bare read of a single variable: blocking readFF.
			b.Instrs = append(b.Instrs, &SyncOp{Sym: sm, Op: sym.OpReadFF, Sp: x.Sp})
		case sm.IsAtomic():
			b.Instrs = append(b.Instrs, &AtomicOp{Sym: sm, Op: sym.OpAtomicRead, Sp: x.Sp})
		case sm.Kind == sym.KindConfig:
			// Config constants have program lifetime: never a hazard.
		default:
			b.Instrs = append(b.Instrs, &Access{Sym: sm, Write: false, Sp: x.Sp})
		}
	case *ast.BinaryExpr:
		lw.expr(b, x.X)
		lw.expr(b, x.Y)
	case *ast.UnaryExpr:
		lw.expr(b, x.X)
	case *ast.RangeExpr:
		lw.expr(b, x.Lo)
		lw.expr(b, x.Hi)
	case *ast.CallExpr:
		lw.call(b, x)
	case *ast.MethodCallExpr:
		for _, a := range x.Args {
			lw.expr(b, a)
		}
		recv := lw.info.Uses[x.Recv]
		if recv == nil {
			return
		}
		recv = lw.resolve(recv)
		op := lw.info.MethodOps[x]
		switch op {
		case sym.OpReadFE, sym.OpReadFF, sym.OpWriteEF:
			b.Instrs = append(b.Instrs, &SyncOp{Sym: recv, Op: op, Sp: x.Sp})
		case sym.OpAtomicRead, sym.OpAtomicWrite, sym.OpAtomicWait:
			a := &AtomicOp{Sym: recv, Op: op, Method: x.Method, Sp: x.Sp}
			if len(x.Args) > 0 {
				if lit, ok := x.Args[0].(*ast.IntLit); ok {
					a.Arg, a.HasArg = lit.Value, true
				}
			}
			b.Instrs = append(b.Instrs, a)
		}
	case *ast.IntLit, *ast.BoolLit, *ast.StringLit:
		// Leaves.
	}
}

func (lw *lowerer) call(b *Block, x *ast.CallExpr) {
	// Builtins: evaluate arguments only.
	if sym.IsBuiltin(x.Fun.Name) {
		for _, a := range x.Args {
			lw.expr(b, a)
		}
		return
	}
	callee := lw.info.Uses[x.Fun]
	if callee == nil || callee.Proc == nil {
		for _, a := range x.Args {
			lw.expr(b, a)
		}
		return
	}
	proc := callee.Proc
	nested := callee.Scope.Kind != sym.ScopeModule
	if !nested {
		// Partial inter-procedural analysis (§III): calls to non-nested
		// procedures are opaque.
		for _, a := range x.Args {
			lw.expr(b, a)
		}
		b.Instrs = append(b.Instrs, &Call{Callee: proc.Name.Name, Sp: x.Sp})
		return
	}
	// Recursion cutoff (§III-A): stop inlining on a cycle.
	for _, active := range lw.inlining {
		if active == proc {
			lw.note(x.Sp, "recursive nested procedure %q: inlining stopped (paper §III-A)", proc.Name.Name)
			for _, a := range x.Args {
				lw.expr(b, a)
			}
			return
		}
	}
	lw.inline(b, proc, x)
}

// inline copies the nested procedure's lowered body at the call site
// (§III-A: "we copy the entire sub-graph of the embedded function at all
// call sites to maintain the context sensitivity").
func (lw *lowerer) inline(b *Block, proc *ast.ProcDecl, call *ast.CallExpr) {
	if len(call.Args) != len(proc.Params) {
		lw.note(call.Sp, "call to %q passes %d arguments for %d parameters",
			proc.Name.Name, len(call.Args), len(proc.Params))
	}
	savedSubst := lw.subst
	newSubst := make(map[*sym.Symbol]*sym.Symbol, len(savedSubst)+len(proc.Params))
	for k, v := range savedSubst {
		newSubst[k] = v
	}
	inlineBlock := &Block{Scope: lw.info.ScopeFor(proc)}
	for i, prm := range proc.Params {
		formal := lw.info.Uses[prm.Name]
		if formal == nil || i >= len(call.Args) {
			continue
		}
		arg := call.Args[i]
		if prm.ByRef {
			// A by-ref formal aliases the actual variable: substitute so
			// accesses inside the body target the caller's symbol.
			if id, ok := arg.(*ast.Ident); ok {
				if actual := lw.info.Uses[id]; actual != nil {
					newSubst[formal] = lw.resolve(actual)
					continue
				}
			}
			lw.note(arg.Span(), "by-ref argument to %q is not a variable; treated by value", proc.Name.Name)
		}
		// By-value formal: evaluate the argument in the caller, then the
		// formal becomes a local of the inlined region.
		lw.expr(b, arg)
		inlineBlock.Instrs = append(inlineBlock.Instrs, &Decl{Sym: formal, Sp: prm.Name.Sp})
	}
	lw.subst = newSubst
	lw.inlining = append(lw.inlining, proc)
	lw.stmts(inlineBlock, proc.Body.Stmts)
	lw.inlining = lw.inlining[:len(lw.inlining)-1]
	lw.subst = savedSubst
	// Splice the inlined body as a control-transparent region.
	b.Instrs = append(b.Instrs, &Region{Body: inlineBlock, Sp: call.Sp})
}
