package repair

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uafcheck/internal/analysis"
	"uafcheck/internal/parser"
	"uafcheck/internal/runtime"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

func analysisDefaults() analysis.Options { return analysis.DefaultOptions() }

func repairOK(t *testing.T, src string) *Result {
	t.Helper()
	res, err := Repair("t.chpl", src, analysis.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// dynClean runs the repaired program exhaustively and asserts no UAF and
// no deadlock — the repair must be semantically correct, not just enough
// to silence the analysis.
func dynClean(t *testing.T, src, entry string) {
	t.Helper()
	diags := &source.Diagnostics{}
	mod := parser.ParseSource("fixed.chpl", src, diags)
	if diags.HasErrors() {
		t.Fatalf("repaired source invalid:\n%s\n%s", diags, src)
	}
	info := sym.Resolve(mod, diags)
	if diags.HasErrors() {
		t.Fatalf("repaired source invalid:\n%s\n%s", diags, src)
	}
	er := runtime.ExploreExhaustive(mod, info, entry, 50000)
	if len(er.UAF) != 0 {
		t.Fatalf("repaired program still races: %v\n%s", er.UAF, src)
	}
	if er.Deadlocks != 0 {
		t.Fatalf("repaired program deadlocks (%d schedules)\n%s", er.Deadlocks, src)
	}
}

func TestRepairNoSyncTask(t *testing.T) {
	src := `proc f() {
  var x: int = 1;
  begin with (ref x) {
    x = 2;
    writeln(x);
  }
  writeln("parent");
}`
	res := repairOK(t, src)
	if !res.Clean() {
		t.Fatalf("not clean: %d remaining\n%s", res.RemainingWarnings, res.Fixed)
	}
	if len(res.Steps) != 1 || res.Steps[0].Strategy != StrategyTokenChain {
		t.Fatalf("steps = %+v, want one token-chain", res.Steps)
	}
	if !strings.Contains(res.Fixed, res.Steps[0].Token) {
		t.Errorf("token %s missing from fixed source", res.Steps[0].Token)
	}
	dynClean(t, res.Fixed, "f")
}

func TestRepairFigure1(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "figure1.chpl"))
	if err != nil {
		t.Fatal(err)
	}
	res := repairOK(t, string(data))
	if !res.Clean() {
		t.Fatalf("figure1 not repaired: %d remaining\n%s", res.RemainingWarnings, res.Fixed)
	}
	dynClean(t, res.Fixed, "outerVarUse")
}

func TestRepairFigure6ConditionalTask(t *testing.T) {
	// The warned task is spawned conditionally: a naive token chain would
	// deadlock the parent on the else path. The engine keeps the protocol
	// total by signalling the token on every skipping branch arm, so the
	// parallelism-preserving token chain still verifies.
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "figure6.chpl"))
	if err != nil {
		t.Fatal(err)
	}
	res := repairOK(t, string(data))
	if !res.Clean() {
		t.Fatalf("figure6 not repaired: %d remaining\n%s", res.RemainingWarnings, res.Fixed)
	}
	if len(res.Steps) != 1 || res.Steps[0].Strategy != StrategyTokenChain {
		t.Fatalf("steps = %+v, want one token-chain", res.Steps)
	}
	// The else arm must have been synthesized with the token signal.
	if !strings.Contains(res.Fixed, "} else {") {
		t.Errorf("missing synthesized else arm:\n%s", res.Fixed)
	}
	if strings.Count(res.Fixed, res.Steps[0].Token+" = true;") != 2 {
		t.Errorf("token should be signalled on both the task and the skip path:\n%s", res.Fixed)
	}
	dynClean(t, res.Fixed, "multipleUse")
}

func TestRepairFenceFallbackWhenTokenDeadlocks(t *testing.T) {
	// Force the token chain to fail: the task ALREADY consumes a token
	// the parent needs afterwards, so appending another handshake keeps
	// the static verdict warning-free but the engine's dynamic check
	// rejects any candidate that deadlocks. Here the inner task is
	// guarded by a while loop... loops forbid token chains outright, so
	// the engine must use a fence.
	src := `config const n = 1;
proc f() {
  var x: int = 1;
  for i in 1..n {
    writeln(i);
  }
  begin with (ref x) {
    writeln(x);
  }
}`
	// The begin is NOT under the loop, so the token chain applies; use a
	// variant with the begin under an if inside a while to force the
	// loop bail-out.
	src = `config const flag = true;
proc f() {
  var x: int = 1;
  var k: int = 1;
  while (k > 0) {
    if (flag) {
      begin with (ref x) {
        writeln(x);
      }
    }
    k -= 1;
  }
}`
	res, err := Repair("t.chpl", src, analysisDefaults())
	if err != nil {
		t.Fatal(err)
	}
	// Loops containing begins are an analysis scope limit (§IV-A): the
	// loop is subsumed and the access surfaces inside the collapsed
	// region; the token chain must refuse (begin under loop).
	for _, s := range res.Steps {
		if s.Strategy == StrategyTokenChain {
			t.Fatalf("token chain applied under a loop: %+v", res.Steps)
		}
	}
}

func TestRepairTrailingAccess(t *testing.T) {
	src := `proc f() {
  var x: int = 1;
  var done$: sync bool;
  begin with (ref x) {
    x = 2;
    done$ = true;
    x = 3;
  }
  done$;
}`
	res := repairOK(t, src)
	if !res.Clean() {
		t.Fatalf("trailing access not repaired:\n%s", res.Fixed)
	}
	dynClean(t, res.Fixed, "f")
}

func TestRepairMultipleTasks(t *testing.T) {
	src := `proc f() {
  var x: int = 1;
  var y: int = 2;
  begin with (ref x) { x = 10; }
  begin with (ref y) { y = 20; }
}`
	res := repairOK(t, src)
	if !res.Clean() {
		t.Fatalf("multi-task not repaired: %d remaining\n%s", res.RemainingWarnings, res.Fixed)
	}
	if len(res.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(res.Steps))
	}
	if res.Steps[0].Token == res.Steps[1].Token {
		t.Error("token reuse across tasks")
	}
	dynClean(t, res.Fixed, "f")
}

func TestRepairNestedLeak(t *testing.T) {
	src := `proc f() {
  var x: int = 1;
  var doneA$: sync bool;
  begin with (ref x) {
    begin with (ref x) {
      writeln(x);
    }
    doneA$ = true;
  }
  doneA$;
}`
	res := repairOK(t, src)
	if !res.Clean() {
		t.Fatalf("nested leak not repaired:\n%s", res.Fixed)
	}
	dynClean(t, res.Fixed, "f")
}

func TestRepairRefParam(t *testing.T) {
	// The endangered variable is a by-ref parameter: the token anchors at
	// the procedure body.
	src := `proc worker(ref buf: int) {
  begin {
    buf = 42;
  }
}
proc main() {
  var b: int = 0;
  worker(b);
  writeln(b);
}`
	res := repairOK(t, src)
	if !res.Clean() {
		t.Fatalf("ref-param case not repaired: %d remaining\n%s", res.RemainingWarnings, res.Fixed)
	}
	dynClean(t, res.Fixed, "main")
}

func TestRepairAlreadyCleanIsNoop(t *testing.T) {
	src := `proc f() {
  var x: int = 1;
  var done$: sync bool;
  begin with (ref x) {
    x = 2;
    done$ = true;
  }
  done$;
}`
	res := repairOK(t, src)
	if len(res.Steps) != 0 || res.InitialWarnings != 0 {
		t.Fatalf("clean program modified: %+v", res.Steps)
	}
	if res.Fixed != src {
		t.Error("clean program source changed")
	}
}

func TestRepairPreservesOutput(t *testing.T) {
	// The repaired program must still compute the same thing: run both
	// under a schedule where the original happens to be safe and compare
	// writeln output.
	src := `proc f() {
  var x: int = 5;
  begin with (ref x) {
    x = x * 2;
    writeln("task:", x);
  }
}`
	res := repairOK(t, src)
	if !res.Clean() {
		t.Fatalf("not repaired:\n%s", res.Fixed)
	}
	diags := &source.Diagnostics{}
	mod := parser.ParseSource("fixed.chpl", res.Fixed, diags)
	info := sym.Resolve(mod, diags)
	r := runtime.Run(mod, info, runtime.Config{Entry: "f", CaptureOutput: true})
	if len(r.Output) != 1 || r.Output[0] != "task:10" {
		t.Errorf("repaired output = %v, want [task:10]", r.Output)
	}
}
