package repair

// Guards on the repair engine's evidence: a degraded analysis reports a
// conservative SUPERSET of the true warnings (or, after a panic, an
// incomplete subset), so the "warning count strictly decreased" test
// would compare apples to oranges. Repair must refuse with ErrDegraded
// instead of accepting — or silently dropping — a fix it cannot verify.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"uafcheck/internal/analysis"
)

// degradingSrc is a proc with real warnings whose PPS state space blows
// a tiny MaxStates budget: several sync-gated tasks times config-flag
// branching.
func degradingSrc() string {
	var sb strings.Builder
	sb.WriteString("config const flag = true;\nproc f() {\n  var x: int = 1;\n")
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&sb, "  var d%d$: sync bool;\n", i)
	}
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&sb, "  begin with (ref x) {\n    x += %d;\n    d%d$ = true;\n  }\n", i+1, i)
	}
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&sb, "  d%d$;\n", i)
	}
	sb.WriteString("}\n")
	return sb.String()
}

func TestRepairRefusesBudgetDegradedBaseline(t *testing.T) {
	opts := analysis.DefaultOptions()
	opts.PPS.MaxStates = 2
	res, err := Repair("t.chpl", degradingSrc(), opts)
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("Repair under a 2-state budget returned (%+v, %v), want ErrDegraded", res, err)
	}
	if !strings.Contains(err.Error(), "baseline") {
		t.Errorf("error should name the degraded phase: %v", err)
	}
}

func TestRepairRefusesCancelledAnalysis(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := analysis.DefaultOptions()
	opts.Ctx = ctx
	res, err := Repair("t.chpl", degradingSrc(), opts)
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("Repair under a cancelled context returned (%+v, %v), want ErrDegraded", res, err)
	}
}

// TestRepairCompleteRunUnaffected: the guard must not fire on a healthy
// run — the plain Figure-1 repair still succeeds.
func TestRepairCompleteRunUnaffected(t *testing.T) {
	src := "proc f() {\n  var x: int = 1;\n  begin with (ref x) {\n    x = 2;\n  }\n  writeln(\"parent\");\n}\n"
	res, err := Repair("t.chpl", src, analysis.DefaultOptions())
	if err != nil {
		t.Fatalf("healthy repair failed: %v", err)
	}
	if !res.Clean() {
		t.Fatalf("healthy repair left %d warning(s)", res.RemainingWarnings)
	}
}
