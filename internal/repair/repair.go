// Package repair synthesizes synchronization fixes for the warnings the
// analysis reports — the §VII future-work direction "the analysis can be
// extended to optimize the amount and position of synchronization points
// required".
//
// For each warned (procedure, task) group the engine tries candidate
// patches in order of decreasing parallelism:
//
//  1. token chain — declare a fresh sync variable next to the endangered
//     variable, signal it as the task's last statement, and wait on it at
//     the end of the variable's scope. This is the paper's preferred
//     point-to-point idiom (Figure 1's doneA$/doneB$ pattern) and keeps
//     the parent running concurrently with the task.
//  2. sync-block wrap of the warned begin — an X10/HJ-style finish
//     around the task itself.
//  3. sync-block wrap of the task chain's first begin — the maximally
//     restrictive fence that the structural protection rule always
//     proves safe.
//
// Every candidate is VERIFIED by re-running the full analysis on the
// patched source: it is accepted only if the warning count strictly
// decreases and no new potential deadlock appears (a token chain for a
// conditionally-spawned task would deadlock the parent — the verifier
// rejects it and the engine falls back to a fence). The result can
// additionally be validated dynamically with the schedule oracle.
package repair

import (
	"errors"
	"fmt"
	"strings"

	"uafcheck/internal/analysis"
	"uafcheck/internal/ast"
	"uafcheck/internal/parser"
	"uafcheck/internal/pps"
	"uafcheck/internal/runtime"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

// ErrDegraded is returned (wrapped) when the baseline analysis or a
// candidate's verification re-analysis did not run to completion —
// state budget, deadline, cancellation, or a recovered panic. A
// degraded report's warnings are a conservative superset of the true
// set (or, after a panic, an incomplete subset), so "the warning count
// decreased" proves nothing against it: accepting a patch on that
// evidence could bless a fix that repairs nothing. Callers should
// re-run with a larger budget or no deadline rather than retry as-is.
var ErrDegraded = errors.New("repair: analysis degraded, fix verification is unreliable")

// ErrParse is returned (wrapped) when the input source fails the
// frontend: there is nothing to repair because there is nothing to
// analyze. The public layer translates it to uafcheck.ErrParse.
var ErrParse = errors.New("repair: source has frontend errors")

// Strategy names an applied patch kind.
type Strategy string

// Strategies, in preference order.
const (
	StrategyTokenChain   Strategy = "token-chain"
	StrategySyncWrap     Strategy = "sync-wrap"
	StrategySyncWrapRoot Strategy = "sync-wrap-chain"
)

// Step records one accepted patch.
type Step struct {
	Strategy Strategy
	Proc     string
	Task     string
	// Token is the introduced sync variable for token-chain steps.
	Token string
	// Patched is the full source after this step was applied — each
	// step's patch is the line diff from the previous step's Patched
	// (or the original input for the first step). The public API
	// derives per-patch unified diffs from these snapshots.
	Patched string
	// Before / After are the verified warning counts around this step:
	// every accepted step has After < Before (the verifier rejects
	// anything else), so the pair is the step's remaining-warning
	// delta.
	Before int
	After  int
}

// Result is the outcome of a repair run.
type Result struct {
	// Fixed is the repaired source (equal to the input when nothing was
	// repairable).
	Fixed string
	// Steps lists the accepted patches in application order.
	Steps []Step
	// InitialWarnings / RemainingWarnings count before and after.
	InitialWarnings   int
	RemainingWarnings int
	// Remaining holds the warnings still present in Fixed (positions
	// refer to the patched source). Empty when Clean().
	Remaining []analysis.Warning
	// Rejected notes candidates the verifier refused and why.
	Rejected []string
}

// Clean reports whether the repaired program analyzes without warnings.
func (r *Result) Clean() bool { return r.RemainingWarnings == 0 }

// maxRounds bounds the repair loop; each round fixes one (proc, task)
// group, so this is also the maximum number of patches.
const maxRounds = 32

// dynBudget bounds the dynamic-verification schedule exploration per
// candidate.
const dynBudget = 4000

// Repair attempts to fix every warning in the source, verifying each
// candidate patch by re-analysis under opts AND by bounded schedule
// exploration: a patch that the static model accepts but that introduces
// a fence-induced deadlock (invisible to the PPS abstraction) is
// rejected dynamically.
func Repair(filename, src string, opts analysis.Options) (*Result, error) {
	res := &Result{Fixed: src}
	cur := src
	first := analysis.AnalyzeSource(filename, cur, opts)
	if first.Diags.HasErrors() {
		return nil, fmt.Errorf("%w:\n%s", ErrParse, first.Diags)
	}
	if stop := first.Degraded(); stop != pps.StopNone {
		return nil, fmt.Errorf("%w (baseline analysis stopped: %s)", ErrDegraded, stop)
	}
	warnings := first.Warnings()
	res.InitialWarnings = len(warnings)
	res.RemainingWarnings = len(warnings)
	res.Remaining = warnings

	for round := 0; round < maxRounds && len(warnings) > 0; round++ {
		w := warnings[0]
		patched, step, rejected, err := fixGroup(filename, cur, w, len(warnings), opts)
		res.Rejected = append(res.Rejected, rejected...)
		if err != nil {
			return nil, err
		}
		if patched == "" {
			// No candidate verified for this group; stop rather than
			// loop on the same warning.
			break
		}
		cur = patched
		after := analysis.AnalyzeSource(filename, cur, opts)
		if stop := after.Degraded(); stop != pps.StopNone {
			return nil, fmt.Errorf("%w (post-patch analysis stopped: %s)", ErrDegraded, stop)
		}
		step.Patched = cur
		step.Before = len(warnings)
		warnings = after.Warnings()
		step.After = len(warnings)
		res.Steps = append(res.Steps, step)
		res.RemainingWarnings = len(warnings)
		res.Remaining = warnings
	}
	res.Fixed = cur
	return res, nil
}

// dynState captures the dynamically observable failures of one proc:
// the set of use-after-free site keys and whether any schedule deadlocks.
type dynState struct {
	uaf      map[string]bool
	deadlock bool
	valid    bool
}

func exploreDyn(src, proc string) dynState {
	diags := &source.Diagnostics{}
	mod := parser.ParseSource("dyn.chpl", src, diags)
	if diags.HasErrors() {
		return dynState{}
	}
	info := sym.Resolve(mod, diags)
	if diags.HasErrors() {
		return dynState{}
	}
	er := runtime.ExploreExhaustive(mod, info, proc, dynBudget)
	st := dynState{uaf: make(map[string]bool), deadlock: er.Deadlocks > 0, valid: true}
	for _, ev := range er.UAF {
		// Key by (variable, task): patches shift line numbers (the
		// pretty-printer reflows), but task labels are stable.
		st.uaf[ev.Var+"@"+ev.Task] = true
	}
	return st
}

// dynCheck compares the patched proc's dynamic behaviour against the
// unpatched baseline: the candidate is rejected when it introduces a NEW
// use-after-free site, keeps the site it claims to fix racy, or adds a
// deadlock the baseline did not have. Residual races from OTHER,
// not-yet-repaired warnings are tolerated — later rounds handle them.
func dynCheck(src, proc string, base dynState, w analysis.Warning) (string, bool) {
	st := exploreDyn(src, proc)
	if !st.valid {
		return "patched source no longer parses", false
	}
	if st.uaf[w.Var+"@"+w.Task] {
		return "patched program still races at the warned site", false
	}
	if base.valid {
		for k := range st.uaf {
			if !base.uaf[k] {
				return "patch introduces a new use-after-free at " + k, false
			}
		}
		if st.deadlock && !base.deadlock {
			return "patch introduces a deadlock under some schedule", false
		}
	} else if st.deadlock || len(st.uaf) > 0 {
		return "patched program fails dynamically", false
	}
	return "", true
}

// fixGroup tries the candidate strategies for the (proc, task) of warning
// w and returns the first verified patch.
func fixGroup(filename, cur string, w analysis.Warning, before int,
	opts analysis.Options) (string, Step, []string, error) {
	base := exploreDyn(cur, w.Proc)
	var rejected []string
	type candidate struct {
		strategy Strategy
		apply    func(mod *ast.Module) (string, bool)
	}
	token := ""
	cands := []candidate{
		{StrategyTokenChain, func(mod *ast.Module) (string, bool) {
			var ok bool
			token, ok = applyTokenChain(mod, w)
			return token, ok
		}},
		{StrategySyncWrap, func(mod *ast.Module) (string, bool) {
			return "", applySyncWrap(mod, w.Proc, w.Task)
		}},
		{StrategySyncWrapRoot, func(mod *ast.Module) (string, bool) {
			return "", applySyncWrapChainRoot(mod, w)
		}},
	}
	for _, c := range cands {
		diags := &source.Diagnostics{}
		mod := parser.ParseSource(filename, cur, diags)
		if diags.HasErrors() {
			return "", Step{}, rejected, nil
		}
		tok, ok := c.apply(mod)
		if !ok {
			continue
		}
		patched := ast.Print(mod)
		reason, verified, err := verify(filename, patched, before, opts)
		if err != nil {
			// The verification analysis itself degraded: its warning set
			// is a conservative superset (or, post-panic, incomplete), so
			// NO candidate can be honestly accepted or rejected — abort
			// the repair instead of guessing.
			return "", Step{}, rejected, err
		}
		if verified {
			reason, verified = dynCheck(patched, w.Proc, base, w)
		}
		if verified {
			return patched, Step{Strategy: c.strategy, Proc: w.Proc, Task: w.Task, Token: tok}, rejected, nil
		}
		rejected = append(rejected,
			fmt.Sprintf("%s for %s/%s: %s", c.strategy, w.Proc, w.Task, reason))
	}
	return "", Step{}, rejected, nil
}

// verify re-analyzes the patched source: accepted iff the analysis ran
// to completion, the source still parses, the warning count strictly
// decreased, and no potential-deadlock note appeared. A degraded
// re-analysis is an error, not a rejection — its conservative-superset
// warning set can neither confirm nor refute the candidate.
func verify(filename, patched string, before int, opts analysis.Options) (string, bool, error) {
	res := analysis.AnalyzeSource(filename, patched, opts)
	if res.Diags.HasErrors() {
		return "patched source no longer parses", false, nil
	}
	if stop := res.Degraded(); stop != pps.StopNone {
		return "", false, fmt.Errorf("%w (candidate re-analysis stopped: %s)", ErrDegraded, stop)
	}
	after := len(res.Warnings())
	if after >= before {
		return fmt.Sprintf("warnings did not decrease (%d -> %d)", before, after), false, nil
	}
	for _, d := range res.Diags.All() {
		if d.Severity == source.Note && strings.Contains(d.Message, "potential deadlock") {
			return "patch introduces a potential deadlock", false, nil
		}
	}
	return "", true, nil
}

// ---------------------------------------------------------------- edits

// locator finds AST positions by walking with parent-block tracking.
type locator struct {
	mod *ast.Module
}

// findProc returns the named top-level procedure.
func (l *locator) findProc(name string) *ast.ProcDecl {
	return l.mod.Proc(name)
}

// findBegin locates the begin statement with the given task label inside
// proc, along with the block and index holding it.
func (l *locator) findBegin(proc *ast.ProcDecl, label string) (*ast.BeginStmt, *ast.BlockStmt, int) {
	var foundB *ast.BeginStmt
	var foundBlk *ast.BlockStmt
	foundIdx := -1
	var walkBlock func(b *ast.BlockStmt)
	walkStmt := func(s ast.Stmt, blk *ast.BlockStmt, i int) {}
	walkStmt = func(s ast.Stmt, blk *ast.BlockStmt, i int) {
		if foundB != nil {
			return
		}
		switch x := s.(type) {
		case *ast.BeginStmt:
			if x.Label == label {
				foundB, foundBlk, foundIdx = x, blk, i
				return
			}
			walkBlock(x.Body)
		case *ast.SyncStmt:
			walkBlock(x.Body)
		case *ast.IfStmt:
			walkBlock(x.Then)
			if x.Else != nil {
				walkBlock(x.Else)
			}
		case *ast.WhileStmt:
			walkBlock(x.Body)
		case *ast.ForStmt:
			walkBlock(x.Body)
		case *ast.BlockStmt:
			walkBlock(x)
		case *ast.ProcStmt:
			walkBlock(x.Proc.Body)
		}
	}
	walkBlock = func(b *ast.BlockStmt) {
		for i, s := range b.Stmts {
			walkStmt(s, b, i)
			if foundB != nil {
				return
			}
		}
	}
	walkBlock(proc.Body)
	return foundB, foundBlk, foundIdx
}

// findDeclBlock locates the block directly declaring the variable (by
// name and declaration line) inside proc, with the statement index.
func (l *locator) findDeclBlock(proc *ast.ProcDecl, name string, line int) (*ast.BlockStmt, int) {
	file := l.mod.File
	var blk *ast.BlockStmt
	idx := -1
	var walkBlock func(b *ast.BlockStmt)
	walkBlock = func(b *ast.BlockStmt) {
		for i, s := range b.Stmts {
			if blk != nil {
				return
			}
			switch x := s.(type) {
			case *ast.VarDecl:
				if x.Name.Name == name && file.Line(x.Name.Sp.Start) == line {
					blk, idx = b, i
					return
				}
			case *ast.BeginStmt:
				walkBlock(x.Body)
			case *ast.SyncStmt:
				walkBlock(x.Body)
			case *ast.IfStmt:
				walkBlock(x.Then)
				if x.Else != nil {
					walkBlock(x.Else)
				}
			case *ast.WhileStmt:
				walkBlock(x.Body)
			case *ast.ForStmt:
				walkBlock(x.Body)
			case *ast.BlockStmt:
				walkBlock(x)
			case *ast.ProcStmt:
				walkBlock(x.Proc.Body)
			}
		}
	}
	walkBlock(proc.Body)
	return blk, idx
}

// freshToken picks a sync-variable name unused in the module.
func freshToken(mod *ast.Module) string {
	used := map[string]bool{}
	ast.Walk(mod, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			used[id.Name] = true
		}
		return true
	})
	for i := 0; ; i++ {
		name := fmt.Sprintf("fix%d$", i)
		if !used[name] {
			return name
		}
	}
}

// applyTokenChain inserts the token-chain patch for warning w:
//
//	var fixN$: sync bool;      // next to the endangered variable
//	... begin { ...; fixN$ = true; }   // task signals last
//	fixN$;                      // scope end waits
//
// Protocol totality: when the begin sits under branches, every arm that
// skips the task must signal the token instead, otherwise the scope-end
// wait deadlocks on the skipping path. Begins under loops are not
// repairable this way (the analysis does not support them either).
func applyTokenChain(mod *ast.Module, w analysis.Warning) (string, bool) {
	l := &locator{mod: mod}
	proc := l.findProc(w.Proc)
	if proc == nil {
		return "", false
	}
	bg, _, _ := l.findBegin(proc, w.Task)
	if bg == nil {
		return "", false
	}
	ifs, underLoop := enclosingBranches(proc, bg)
	if underLoop {
		return "", false
	}
	declBlk, declIdx := l.findDeclBlock(proc, w.Var, w.DeclLine)
	if declBlk == nil {
		// Ref parameters have no VarDecl; anchor at the proc body head.
		declBlk, declIdx = proc.Body, -1
	}
	token := freshToken(mod)

	tokenDecl := &ast.VarDecl{
		Name: &ast.Ident{Name: token},
		Type: ast.Type{Qual: ast.QualSync, Kind: ast.TypeBool},
	}
	signal := func() ast.Stmt {
		return &ast.AssignStmt{
			Lhs: &ast.Ident{Name: token}, Op: "=", Rhs: &ast.BoolLit{Value: true},
		}
	}
	wait := &ast.ExprStmt{X: &ast.Ident{Name: token}}

	// Insert the declaration right after the endangered variable's
	// declaration (or at the top of the proc for ref params).
	declBlk.Stmts = insertAt(declBlk.Stmts, declIdx+1, tokenDecl)
	// Signal as the task's last statement.
	bg.Body.Stmts = append(bg.Body.Stmts, signal())
	// Keep the protocol total across skipping branch arms.
	for _, enc := range ifs {
		if enc.inThen {
			if enc.stmt.Else == nil {
				enc.stmt.Else = &ast.BlockStmt{}
			}
			enc.stmt.Else.Stmts = append(enc.stmt.Else.Stmts, signal())
		} else {
			enc.stmt.Then.Stmts = append(enc.stmt.Then.Stmts, signal())
		}
	}
	// Wait at the end of the declaring block — the variable's scope end.
	declBlk.Stmts = append(declBlk.Stmts, wait)
	return token, true
}

// enclosingIf records one branch on the path to the begin and which arm
// contains it.
type enclosingIf struct {
	stmt   *ast.IfStmt
	inThen bool
}

// enclosingBranches returns the if statements enclosing target (innermost
// last) and whether a loop encloses it.
func enclosingBranches(proc *ast.ProcDecl, target *ast.BeginStmt) ([]enclosingIf, bool) {
	var out []enclosingIf
	underLoop := false
	found := false
	var walkList func(list []ast.Stmt, ifs []enclosingIf, loops int)
	walkList = func(list []ast.Stmt, ifs []enclosingIf, loops int) {
		for _, s := range list {
			if found {
				return
			}
			switch x := s.(type) {
			case *ast.BeginStmt:
				if x == target {
					out = append([]enclosingIf(nil), ifs...)
					underLoop = loops > 0
					found = true
					return
				}
				walkList(x.Body.Stmts, ifs, loops)
			case *ast.SyncStmt:
				walkList(x.Body.Stmts, ifs, loops)
			case *ast.IfStmt:
				walkList(x.Then.Stmts, append(ifs, enclosingIf{x, true}), loops)
				if x.Else != nil {
					walkList(x.Else.Stmts, append(ifs, enclosingIf{x, false}), loops)
				}
			case *ast.WhileStmt:
				walkList(x.Body.Stmts, ifs, loops+1)
			case *ast.ForStmt:
				walkList(x.Body.Stmts, ifs, loops+1)
			case *ast.BlockStmt:
				walkList(x.Stmts, ifs, loops)
			case *ast.ProcStmt:
				walkList(x.Proc.Body.Stmts, nil, 0)
			}
		}
	}
	walkList(proc.Body.Stmts, nil, 0)
	return out, underLoop
}

// applySyncWrap replaces the warned begin statement with sync { begin }.
func applySyncWrap(mod *ast.Module, procName, label string) bool {
	l := &locator{mod: mod}
	proc := l.findProc(procName)
	if proc == nil {
		return false
	}
	bg, blk, idx := l.findBegin(proc, label)
	if bg == nil || blk == nil {
		return false
	}
	blk.Stmts[idx] = &ast.SyncStmt{Body: &ast.BlockStmt{Stmts: []ast.Stmt{bg}}}
	return true
}

// applySyncWrapChainRoot wraps the task chain's FIRST begin — the one the
// structural protection rule checks — in a sync block. The first begin is
// found by walking task labels outward: the chain root is the outermost
// begin (directly in the proc body path) that transitively contains the
// warned task.
func applySyncWrapChainRoot(mod *ast.Module, w analysis.Warning) bool {
	l := &locator{mod: mod}
	proc := l.findProc(w.Proc)
	if proc == nil {
		return false
	}
	target, _, _ := l.findBegin(proc, w.Task)
	if target == nil {
		return false
	}
	// Find the outermost begin containing target.
	var rootLabel string
	var walk func(s ast.Stmt, top string)
	found := false
	walk = func(s ast.Stmt, top string) {
		if found {
			return
		}
		switch x := s.(type) {
		case *ast.BeginStmt:
			t := top
			if t == "" {
				t = x.Label
			}
			if x.Label == w.Task {
				rootLabel = t
				found = true
				return
			}
			for _, inner := range x.Body.Stmts {
				walk(inner, t)
			}
		case *ast.SyncStmt:
			for _, inner := range x.Body.Stmts {
				walk(inner, top)
			}
		case *ast.IfStmt:
			for _, inner := range x.Then.Stmts {
				walk(inner, top)
			}
			if x.Else != nil {
				for _, inner := range x.Else.Stmts {
					walk(inner, top)
				}
			}
		case *ast.WhileStmt:
			for _, inner := range x.Body.Stmts {
				walk(inner, top)
			}
		case *ast.ForStmt:
			for _, inner := range x.Body.Stmts {
				walk(inner, top)
			}
		case *ast.BlockStmt:
			for _, inner := range x.Stmts {
				walk(inner, top)
			}
		case *ast.ProcStmt:
			for _, inner := range x.Proc.Body.Stmts {
				walk(inner, "")
			}
		}
	}
	for _, s := range proc.Body.Stmts {
		walk(s, "")
	}
	if rootLabel == "" {
		return false
	}
	return applySyncWrap(mod, w.Proc, rootLabel)
}

// insertAt inserts stmt at index i (clamped).
func insertAt(list []ast.Stmt, i int, stmt ast.Stmt) []ast.Stmt {
	if i < 0 {
		i = 0
	}
	if i > len(list) {
		i = len(list)
	}
	out := make([]ast.Stmt, 0, len(list)+1)
	out = append(out, list[:i]...)
	out = append(out, stmt)
	out = append(out, list[i:]...)
	return out
}
