// Package token defines the lexical tokens of MiniChapel, the Chapel
// subset consumed by the use-after-free analysis. The subset covers every
// construct the paper's compiler pass observes: procedures (including
// nested ones), variable declarations with sync/single/atomic types,
// begin statements with ref/in intents, sync blocks, branches, loops and
// the sync-variable read/write forms.
package token

import "fmt"

// Kind enumerates token kinds.
type Kind int

// Token kinds. Keyword kinds sit between keywordBeg and keywordEnd.
const (
	Illegal Kind = iota
	EOF
	Comment

	// Literals and identifiers.
	Ident     // x, doneA$ (sync-var names keep their $ suffix)
	IntLit    // 123
	BoolLit   // true / false (also keywords; classified as BoolLit)
	StringLit // "hello"

	// Operators and delimiters.
	Assign     // =
	PlusEq     // +=
	MinusEq    // -=
	TimesEq    // *=
	Plus       // +
	Minus      // -
	Star       // *
	Slash      // /
	Percent    // %
	PlusPlus   // ++
	MinusMinus // --
	Eq         // ==
	NotEq      // !=
	Lt         // <
	LtEq       // <=
	Gt         // >
	GtEq       // >=
	AndAnd     // &&
	OrOr       // ||
	Not        // !
	LParen     // (
	RParen     // )
	LBrace     // {
	RBrace     // }
	LBracket   // [
	RBracket   // ]
	Comma      // ,
	Semicolon  // ;
	Colon      // :
	Dot        // .
	DotDot     // ..

	keywordBeg
	KwProc
	KwVar
	KwConst
	KwConfig
	KwBegin
	KwSync
	KwSingle
	KwAtomic
	KwWith
	KwRef
	KwIn
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwTrue
	KwFalse
	KwInt
	KwBool
	KwString
	KwVoid
	keywordEnd
)

var kindNames = map[Kind]string{
	Illegal:    "ILLEGAL",
	EOF:        "EOF",
	Comment:    "COMMENT",
	Ident:      "IDENT",
	IntLit:     "INT",
	BoolLit:    "BOOL",
	StringLit:  "STRING",
	Assign:     "=",
	PlusEq:     "+=",
	MinusEq:    "-=",
	TimesEq:    "*=",
	Plus:       "+",
	Minus:      "-",
	Star:       "*",
	Slash:      "/",
	Percent:    "%",
	PlusPlus:   "++",
	MinusMinus: "--",
	Eq:         "==",
	NotEq:      "!=",
	Lt:         "<",
	LtEq:       "<=",
	Gt:         ">",
	GtEq:       ">=",
	AndAnd:     "&&",
	OrOr:       "||",
	Not:        "!",
	LParen:     "(",
	RParen:     ")",
	LBrace:     "{",
	RBrace:     "}",
	LBracket:   "[",
	RBracket:   "]",
	Comma:      ",",
	Semicolon:  ";",
	Colon:      ":",
	Dot:        ".",
	DotDot:     "..",
	KwProc:     "proc",
	KwVar:      "var",
	KwConst:    "const",
	KwConfig:   "config",
	KwBegin:    "begin",
	KwSync:     "sync",
	KwSingle:   "single",
	KwAtomic:   "atomic",
	KwWith:     "with",
	KwRef:      "ref",
	KwIn:       "in",
	KwIf:       "if",
	KwElse:     "else",
	KwWhile:    "while",
	KwFor:      "for",
	KwReturn:   "return",
	KwTrue:     "true",
	KwFalse:    "false",
	KwInt:      "int",
	KwBool:     "bool",
	KwString:   "string",
	KwVoid:     "void",
}

// String returns the canonical spelling of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsKeyword reports whether k is a reserved word.
func (k Kind) IsKeyword() bool { return k > keywordBeg && k < keywordEnd }

var keywords = map[string]Kind{}

func init() {
	for k := keywordBeg + 1; k < keywordEnd; k++ {
		keywords[kindNames[k]] = k
	}
}

// Lookup classifies an identifier spelling: keyword kind if reserved,
// Ident otherwise. true/false map to BoolLit.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		if k == KwTrue || k == KwFalse {
			return BoolLit
		}
		return k
	}
	return Ident
}

// Precedence returns the binary-operator precedence of k (higher binds
// tighter), or 0 if k is not a binary operator.
func (k Kind) Precedence() int {
	switch k {
	case OrOr:
		return 1
	case AndAnd:
		return 2
	case Eq, NotEq, Lt, LtEq, Gt, GtEq:
		return 3
	case DotDot:
		return 4
	case Plus, Minus:
		return 5
	case Star, Slash, Percent:
		return 6
	}
	return 0
}

// Token is one lexeme with its kind, spelling and source span.
type Token struct {
	Kind Kind
	Lit  string // original spelling for Ident/IntLit/BoolLit/StringLit/Comment
	Span Span
}

// Span mirrors source.Span without importing it, to keep token leaf-level.
type Span struct {
	Start, End int
}

// String renders the token for debugging.
func (t Token) String() string {
	switch t.Kind {
	case Ident, IntLit, BoolLit, StringLit, Comment:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}
