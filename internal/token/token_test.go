package token

import "testing"

func TestLookup(t *testing.T) {
	cases := map[string]Kind{
		"proc":   KwProc,
		"var":    KwVar,
		"begin":  KwBegin,
		"sync":   KwSync,
		"single": KwSingle,
		"atomic": KwAtomic,
		"with":   KwWith,
		"ref":    KwRef,
		"in":     KwIn,
		"if":     KwIf,
		"else":   KwElse,
		"while":  KwWhile,
		"for":    KwFor,
		"return": KwReturn,
		"config": KwConfig,
		"const":  KwConst,
		"int":    KwInt,
		"bool":   KwBool,
		"string": KwString,
		"void":   KwVoid,
		"true":   BoolLit,
		"false":  BoolLit,
		"x":      Ident,
		"doneA$": Ident,
		"begins": Ident, // prefix of keyword is still an identifier
	}
	for lit, want := range cases {
		if got := Lookup(lit); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", lit, got, want)
		}
	}
}

func TestIsKeyword(t *testing.T) {
	if !KwProc.IsKeyword() || !KwVoid.IsKeyword() {
		t.Error("keyword kinds not recognized")
	}
	for _, k := range []Kind{Ident, IntLit, Plus, EOF, LBrace} {
		if k.IsKeyword() {
			t.Errorf("%v wrongly classified as keyword", k)
		}
	}
}

func TestPrecedenceOrdering(t *testing.T) {
	// || < && < comparisons < range < additive < multiplicative
	chain := [][]Kind{
		{OrOr},
		{AndAnd},
		{Eq, NotEq, Lt, LtEq, Gt, GtEq},
		{DotDot},
		{Plus, Minus},
		{Star, Slash, Percent},
	}
	prev := 0
	for _, level := range chain {
		p := level[0].Precedence()
		if p <= prev {
			t.Errorf("precedence level %v = %d, not greater than %d", level, p, prev)
		}
		for _, k := range level {
			if k.Precedence() != p {
				t.Errorf("%v precedence %d != level %d", k, k.Precedence(), p)
			}
		}
		prev = p
	}
	for _, k := range []Kind{Assign, Not, LParen, Ident, KwIf} {
		if k.Precedence() != 0 {
			t.Errorf("%v should have no binary precedence", k)
		}
	}
}

func TestKindString(t *testing.T) {
	if KwBegin.String() != "begin" || Plus.String() != "+" || DotDot.String() != ".." {
		t.Error("kind spellings wrong")
	}
	if Kind(9999).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Kind: Ident, Lit: "doneA$"}
	if tok.String() != `IDENT("doneA$")` {
		t.Errorf("Token.String() = %q", tok.String())
	}
	op := Token{Kind: PlusEq}
	if op.String() != "+=" {
		t.Errorf("op String() = %q", op.String())
	}
}
