// Package corpus generates a synthetic MiniChapel test suite that stands
// in for the Chapel 1.11 test suite used in the paper's evaluation (§V,
// Table I). The real suite is a snapshot of a proprietary repository; per
// the reproduction's substitution rule we regenerate a population with
// the same *structure*:
//
//   - thousands of test programs, only a few percent of which create
//     begin tasks (paper: 218 of 5127);
//   - task tests dominated by safe idioms — sync blocks, sync-variable
//     wait chains, in-intent copies, single-variable handshakes;
//   - a small set of genuinely dangerous programs (missing
//     synchronization, nested begins without a wait chain, trailing
//     accesses, branch-dependent synchronization) — the true positives;
//   - a larger set of programs synchronized through atomic variables,
//     which the paper's analysis deliberately does not model (§IV-A) and
//     therefore flags — the dominant false-positive source behind the
//     14.4% true-positive rate.
//
// Every generated program carries ground-truth labels: the set of access
// sites (variable + line) that are truly use-after-free under some
// schedule. Labels are constructed by the patterns themselves and can be
// cross-validated with the runtime oracle (internal/runtime).
package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// TestCase is one generated program.
type TestCase struct {
	Name    string
	Pattern string
	Source  string
	// HasBegin marks programs that create at least one task.
	HasBegin bool
	// TrueSites are ground-truth dangerous access sites, as "var:line".
	TrueSites []string
	// WantWarn notes whether the paper's analysis is expected to warn on
	// this program (true positives and known false-positive patterns).
	WantWarn bool
	// EntryProc names the procedure to run for dynamic validation.
	EntryProc string
}

// Params control the population; the defaults are calibrated to the
// Table I shape.
type Params struct {
	Seed int64
	// Tests is the total number of test cases (paper: 5127).
	Tests int
	// BeginTests is the number of tests that create tasks (paper: 218).
	BeginTests int
	// UnsafeTests is the number of genuinely dangerous task tests.
	UnsafeTests int
	// TrueSites is the total number of dangerous access sites across the
	// unsafe tests (paper: 63 verified true positives).
	TrueSites int
	// AtomicFPTests is the number of atomics-synchronized task tests
	// (statically flagged, dynamically safe).
	AtomicFPTests int
	// FalseSites is the total number of flagged-but-safe access sites
	// across the atomic tests (paper: 437-63 = 374).
	FalseSites int
}

// DefaultParams reproduce the Table I population.
func DefaultParams(seed int64) Params {
	return Params{
		Seed:          seed,
		Tests:         5127,
		BeginTests:    218,
		UnsafeTests:   14,
		TrueSites:     63,
		AtomicFPTests: 24,
		FalseSites:    374,
	}
}

// Generate produces the corpus. The same Params yield the same corpus.
func Generate(p Params) []TestCase {
	r := rand.New(rand.NewSource(p.Seed))
	var out []TestCase

	// Dangerous task tests: distribute the true sites across the unsafe
	// tests as evenly as possible.
	unsafeSizes := distribute(p.TrueSites, p.UnsafeTests)
	for i, k := range unsafeSizes {
		out = append(out, genUnsafe(r, fmt.Sprintf("unsafe%03d", i), i, k))
	}
	// Atomic false-positive tests.
	fpSizes := distribute(p.FalseSites, p.AtomicFPTests)
	for i, k := range fpSizes {
		out = append(out, genAtomicFP(r, fmt.Sprintf("atomicfp%03d", i), i, k))
	}
	// Safe task tests fill the remaining begin quota.
	safeBegin := p.BeginTests - len(out)
	for i := 0; i < safeBegin; i++ {
		out = append(out, genSafeBegin(r, fmt.Sprintf("safetask%03d", i), i))
	}
	// Sequential tests fill the rest of the suite.
	seq := p.Tests - len(out)
	for i := 0; i < seq; i++ {
		out = append(out, genSequential(r, fmt.Sprintf("seq%04d", i), i))
	}
	// Deterministic shuffle so patterns are interleaved like a real
	// suite directory listing.
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// distribute splits total into n parts differing by at most one.
func distribute(total, n int) []int {
	if n <= 0 {
		return nil
	}
	parts := make([]int, n)
	for i := range parts {
		parts[i] = total / n
	}
	for i := 0; i < total%n; i++ {
		parts[i]++
	}
	return parts
}

// ---------------------------------------------------------------- writer

// w builds source text while tracking line numbers, so patterns can label
// the exact lines of their dangerous accesses.
type w struct {
	b      strings.Builder
	line   int
	indent int
}

// ln writes one line and returns its line number.
func (s *w) ln(format string, args ...any) int {
	s.line++
	s.b.WriteString(strings.Repeat("  ", s.indent))
	fmt.Fprintf(&s.b, format, args...)
	s.b.WriteByte('\n')
	return s.line
}

func (s *w) in()  { s.indent++ }
func (s *w) out() { s.indent-- }

func site(v string, line int) string { return fmt.Sprintf("%s:%d", v, line) }
