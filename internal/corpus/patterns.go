package corpus

import (
	"fmt"
	"math/rand"
)

// ------------------------------------------------------------- unsafe

// genUnsafe produces a genuinely dangerous program with exactly k true
// use-after-free sites. The shape rotates through the paper's motifs:
// tasks with no synchronization, nested begins without a wait chain
// (Figure 1), trailing accesses after the last sync event, and
// branch-dependent synchronization (Figure 6).
func genUnsafe(r *rand.Rand, name string, variant, k int) TestCase {
	switch variant % 5 {
	case 0:
		return unsafeNoSync(r, name, k)
	case 1:
		return unsafeNestedLeak(r, name, k)
	case 2:
		return unsafeTrailing(r, name, k)
	case 3:
		return unsafeBranchLeak(r, name, k)
	default:
		return unsafeHiddenNestedProc(r, name, k)
	}
}

// unsafeHiddenNestedProc: the §I hidden-access motif — the begin task
// calls a nested procedure that touches the outer variable without it
// ever appearing in a with-clause. Inlining (§III-A) exposes the k
// dangerous accesses; tree-based baselines without inlining miss them.
func unsafeHiddenNestedProc(r *rand.Rand, name string, k int) TestCase {
	s := &w{}
	var sites []string
	proc := "t_" + name
	s.ln("proc %s() {", proc)
	s.in()
	s.ln("var x: int = %d;", r.Intn(100))
	s.ln("proc helper%s() {", name)
	s.in()
	for i := 0; i < k; i++ {
		if i%2 == 0 {
			sites = append(sites, site("x", s.ln("writeln(x);")))
		} else {
			sites = append(sites, site("x", s.ln("x = x + %d;", i+1)))
		}
	}
	s.out()
	s.ln("}")
	s.ln("begin {")
	s.in()
	s.ln("helper%s();", name)
	s.out()
	s.ln("}")
	s.out()
	s.ln("}")
	return TestCase{
		Name: name, Pattern: "unsafe-hidden-nested", Source: s.b.String(),
		HasBegin: true, TrueSites: sites, WantWarn: true, EntryProc: proc,
	}
}

// unsafeNoSync: a task accesses the outer variable k times with no
// synchronization whatsoever. Every access is a true positive
// (never-synchronized).
func unsafeNoSync(r *rand.Rand, name string, k int) TestCase {
	s := &w{}
	var sites []string
	proc := "t_" + name
	s.ln("proc %s() {", proc)
	s.in()
	s.ln("var x: int = %d;", r.Intn(100))
	s.ln("begin with (ref x) {")
	s.in()
	for i := 0; i < k; i++ {
		if i%2 == 0 {
			sites = append(sites, site("x", s.ln("writeln(x);")))
		} else {
			sites = append(sites, site("x", s.ln("x = x + %d;", i+1)))
		}
	}
	s.out()
	s.ln("}")
	s.ln("writeln(\"spawned\");")
	s.out()
	s.ln("}")
	return TestCase{
		Name: name, Pattern: "unsafe-nosync", Source: s.b.String(),
		HasBegin: true, TrueSites: sites, WantWarn: true, EntryProc: proc,
	}
}

// unsafeNestedLeak: Figure 1's shape — the outer task synchronizes with
// the parent, but the nested task's accesses escape the wait chain.
// The k dangerous accesses live in the nested task.
func unsafeNestedLeak(r *rand.Rand, name string, k int) TestCase {
	s := &w{}
	var sites []string
	proc := "t_" + name
	s.ln("proc %s() {", proc)
	s.in()
	s.ln("var x: int = %d;", r.Intn(100))
	s.ln("var doneA$: sync bool;")
	s.ln("begin with (ref x) {")
	s.in()
	s.ln("writeln(x);") // safe: ordered before doneA$ = true
	s.ln("begin with (ref x) {")
	s.in()
	for i := 0; i < k; i++ {
		sites = append(sites, site("x", s.ln("writeln(x + %d);", i)))
	}
	s.out()
	s.ln("}")
	s.ln("doneA$ = true;")
	s.out()
	s.ln("}")
	s.ln("doneA$;")
	s.out()
	s.ln("}")
	return TestCase{
		Name: name, Pattern: "unsafe-nested-leak", Source: s.b.String(),
		HasBegin: true, TrueSites: sites, WantWarn: true, EntryProc: proc,
	}
}

// unsafeTrailing: the task signals the parent and then keeps accessing
// the outer variable after its last sync event.
func unsafeTrailing(r *rand.Rand, name string, k int) TestCase {
	s := &w{}
	var sites []string
	proc := "t_" + name
	s.ln("proc %s() {", proc)
	s.in()
	s.ln("var x: int = %d;", r.Intn(100))
	s.ln("var done$: sync bool;")
	s.ln("begin with (ref x) {")
	s.in()
	s.ln("x = x * 2;") // safe: before the signal
	s.ln("done$ = true;")
	for i := 0; i < k; i++ {
		sites = append(sites, site("x", s.ln("x += %d;", i+1)))
	}
	s.out()
	s.ln("}")
	s.ln("done$;")
	s.out()
	s.ln("}")
	return TestCase{
		Name: name, Pattern: "unsafe-trailing", Source: s.b.String(),
		HasBegin: true, TrueSites: sites, WantWarn: true, EntryProc: proc,
	}
}

// unsafeBranchLeak: Figure 6's shape — when the branch is taken, the
// nested task consumes the sync token itself and the parent may exit
// before the nested accesses execute.
func unsafeBranchLeak(r *rand.Rand, name string, k int) TestCase {
	s := &w{}
	var sites []string
	proc := "t_" + name
	s.ln("config const flag%s = true;", name)
	s.ln("proc %s() {", proc)
	s.in()
	s.ln("var x: int = %d;", r.Intn(100))
	s.ln("var done$: sync bool;")
	s.ln("begin with (ref x) {")
	s.in()
	s.ln("if (flag%s) {", name)
	s.in()
	s.ln("begin with (ref x) {")
	s.in()
	for i := 0; i < k; i++ {
		sites = append(sites, site("x", s.ln("writeln(x * %d);", i+2)))
	}
	s.ln("done$ = true;")
	s.ln("done$;")
	s.out()
	s.ln("}")
	s.out()
	s.ln("}")
	s.ln("done$ = true;")
	s.out()
	s.ln("}")
	s.ln("done$;")
	s.out()
	s.ln("}")
	return TestCase{
		Name: name, Pattern: "unsafe-branch-leak", Source: s.b.String(),
		HasBegin: true, TrueSites: sites, WantWarn: true, EntryProc: proc,
	}
}

// ------------------------------------------------------------ atomic FP

// genAtomicFP produces a program that synchronizes tasks with atomic
// variables. Dynamically safe (the parent spins on waitFor before leaving
// the scope), but the paper's analysis does not model atomics (§IV-A), so
// each of the k outer accesses is reported — a false positive.
func genAtomicFP(r *rand.Rand, name string, variant, k int) TestCase {
	if variant%2 == 0 {
		return atomicHandshake(r, name, k)
	}
	return atomicCounter(r, name, k)
}

// atomicHandshake: single task, parent waits with waitFor(1).
func atomicHandshake(r *rand.Rand, name string, k int) TestCase {
	s := &w{}
	var sites []string
	proc := "t_" + name
	s.ln("proc %s() {", proc)
	s.in()
	s.ln("var x: int = %d;", r.Intn(100))
	s.ln("var f: atomic int;")
	s.ln("begin with (ref x) {")
	s.in()
	for i := 0; i < k; i++ {
		if i%3 == 0 {
			sites = append(sites, site("x", s.ln("x = x + %d;", i+1)))
		} else {
			sites = append(sites, site("x", s.ln("writeln(x);")))
		}
	}
	s.ln("f.write(1);")
	s.out()
	s.ln("}")
	s.ln("f.waitFor(1);")
	s.out()
	s.ln("}")
	return TestCase{
		Name: name, Pattern: "atomic-handshake", Source: s.b.String(),
		HasBegin: true, TrueSites: nil, WantWarn: true, EntryProc: proc,
	}
}

// atomicCounter: two tasks increment a completion counter; the parent
// waits for both. All accesses flagged, none truly dangerous.
func atomicCounter(r *rand.Rand, name string, k int) TestCase {
	s := &w{}
	proc := "t_" + name
	k1 := k / 2
	k2 := k - k1
	s.ln("proc %s() {", proc)
	s.in()
	s.ln("var x: int = %d;", r.Intn(100))
	s.ln("var y: int = %d;", r.Intn(100))
	s.ln("var c: atomic int;")
	s.ln("begin with (ref x) {")
	s.in()
	for i := 0; i < k1; i++ {
		s.ln("x += %d;", i+1)
	}
	s.ln("c.fetchAdd(1);")
	s.out()
	s.ln("}")
	s.ln("begin with (ref y) {")
	s.in()
	for i := 0; i < k2; i++ {
		s.ln("y += %d;", i+1)
	}
	s.ln("c.fetchAdd(1);")
	s.out()
	s.ln("}")
	s.ln("c.waitFor(2);")
	s.ln("writeln(x + y);")
	s.out()
	s.ln("}")
	return TestCase{
		Name: name, Pattern: "atomic-counter", Source: s.b.String(),
		HasBegin: true, TrueSites: nil, WantWarn: true, EntryProc: proc,
	}
}

// ------------------------------------------------------------ safe tasks

// genSafeBegin rotates through the safe idioms; none should produce any
// warning.
func genSafeBegin(r *rand.Rand, name string, variant int) TestCase {
	switch variant % 8 {
	case 0:
		return safeSyncBlock(r, name)
	case 1:
		return safeSyncChain(r, name)
	case 2:
		return safeInIntent(r, name)
	case 3:
		return safeSingleHandshake(r, name)
	case 4:
		return safeNestedChain(r, name)
	case 5:
		return safeNestedProcChain(r, name)
	case 6:
		return safeSyncedRefParam(r, name)
	default:
		return safeFencedHandshake(r, name)
	}
}

// safeFencedHandshake: a sync-block-protected task subtree with an
// INTERNAL sync-variable handshake. Rule C prunes the whole subtree,
// saving the exploration of its sync nodes — the pattern that makes the
// pruning ablation's state savings visible.
func safeFencedHandshake(r *rand.Rand, name string) TestCase {
	s := &w{}
	proc := "t_" + name
	s.ln("proc %s() {", proc)
	s.in()
	s.ln("var x: int = %d;", r.Intn(100))
	s.ln("sync {")
	s.in()
	s.ln("begin with (ref x) {")
	s.in()
	s.ln("var inner%s$: sync bool;", name)
	s.ln("begin with (ref x) {")
	s.in()
	s.ln("x = x + %d;", 1+r.Intn(9))
	s.ln("inner%s$ = true;", name)
	s.out()
	s.ln("}")
	s.ln("inner%s$;", name)
	s.ln("x = x * %d;", 2+r.Intn(3))
	s.out()
	s.ln("}")
	s.out()
	s.ln("}")
	s.ln("writeln(x);")
	s.out()
	s.ln("}")
	return TestCase{Name: name, Pattern: "safe-fenced-handshake", Source: s.b.String(),
		HasBegin: true, EntryProc: proc}
}

// safeNestedProcChain: a hidden access through a nested procedure, made
// safe by a sync-variable wait chain — the inlining must see through the
// call AND the PPS exploration must clear it.
func safeNestedProcChain(r *rand.Rand, name string) TestCase {
	s := &w{}
	proc := "t_" + name
	s.ln("proc %s() {", proc)
	s.in()
	s.ln("var x: int = %d;", r.Intn(100))
	s.ln("var done$: sync bool;")
	s.ln("proc bump%s() {", name)
	s.in()
	s.ln("x = x + %d;", 1+r.Intn(9))
	s.out()
	s.ln("}")
	s.ln("begin {")
	s.in()
	s.ln("bump%s();", name)
	s.ln("done$ = true;")
	s.out()
	s.ln("}")
	s.ln("done$;")
	s.ln("writeln(x);")
	s.out()
	s.ln("}")
	return TestCase{Name: name, Pattern: "safe-nestedproc", Source: s.b.String(),
		HasBegin: true, EntryProc: proc}
}

// safeSyncedRefParam: the synced-scope-list rule (§III-A) — a worker
// procedure takes the buffer by reference and spawns a task on it; every
// call site is enclosed in a sync block, so the ref-param accesses are
// structurally safe.
func safeSyncedRefParam(r *rand.Rand, name string) TestCase {
	s := &w{}
	proc := "t_" + name
	s.ln("proc worker%s(ref buf: int) {", name)
	s.in()
	s.ln("begin {")
	s.in()
	s.ln("buf = buf * %d;", 2+r.Intn(5))
	s.out()
	s.ln("}")
	s.out()
	s.ln("}")
	s.ln("proc %s() {", proc)
	s.in()
	s.ln("var v: int = %d;", r.Intn(100))
	s.ln("sync {")
	s.in()
	s.ln("worker%s(v);", name)
	s.out()
	s.ln("}")
	s.ln("writeln(v);")
	s.out()
	s.ln("}")
	return TestCase{Name: name, Pattern: "safe-syncedref", Source: s.b.String(),
		HasBegin: true, EntryProc: proc}
}

func safeSyncBlock(r *rand.Rand, name string) TestCase {
	s := &w{}
	proc := "t_" + name
	tasks := 1 + r.Intn(3)
	s.ln("proc %s() {", proc)
	s.in()
	s.ln("var x: int = %d;", r.Intn(100))
	s.ln("sync {")
	s.in()
	for i := 0; i < tasks; i++ {
		s.ln("begin with (ref x) {")
		s.in()
		s.ln("x += %d;", i+1)
		s.out()
		s.ln("}")
	}
	s.out()
	s.ln("}")
	s.ln("writeln(x);")
	s.out()
	s.ln("}")
	return TestCase{Name: name, Pattern: "safe-syncblock", Source: s.b.String(),
		HasBegin: true, EntryProc: proc}
}

func safeSyncChain(r *rand.Rand, name string) TestCase {
	s := &w{}
	proc := "t_" + name
	accesses := 1 + r.Intn(4)
	s.ln("proc %s() {", proc)
	s.in()
	s.ln("var x: int = %d;", r.Intn(100))
	s.ln("var done$: sync bool;")
	s.ln("begin with (ref x) {")
	s.in()
	for i := 0; i < accesses; i++ {
		s.ln("x = x + %d;", i+1)
	}
	s.ln("done$ = true;")
	s.out()
	s.ln("}")
	s.ln("done$;")
	s.ln("writeln(x);")
	s.out()
	s.ln("}")
	return TestCase{Name: name, Pattern: "safe-syncchain", Source: s.b.String(),
		HasBegin: true, EntryProc: proc}
}

func safeInIntent(r *rand.Rand, name string) TestCase {
	s := &w{}
	proc := "t_" + name
	s.ln("proc %s() {", proc)
	s.in()
	s.ln("var x: int = %d;", r.Intn(100))
	s.ln("begin with (in x) {")
	s.in()
	s.ln("writeln(x);")
	s.ln("writeln(x * 2);")
	s.out()
	s.ln("}")
	s.out()
	s.ln("}")
	return TestCase{Name: name, Pattern: "safe-inintent", Source: s.b.String(),
		HasBegin: true, EntryProc: proc}
}

// safeSingleHandshake: the task writes a single variable after its
// accesses; the parent readFFs it before leaving the scope. Exercises the
// SINGLE-READ rule.
func safeSingleHandshake(r *rand.Rand, name string) TestCase {
	s := &w{}
	proc := "t_" + name
	s.ln("proc %s() {", proc)
	s.in()
	s.ln("var x: int = %d;", r.Intn(100))
	s.ln("var ready$: single bool;")
	s.ln("begin with (ref x) {")
	s.in()
	s.ln("x = x * 3;")
	s.ln("ready$.writeEF(true);")
	s.out()
	s.ln("}")
	s.ln("ready$.readFF();")
	s.ln("writeln(x);")
	s.out()
	s.ln("}")
	return TestCase{Name: name, Pattern: "safe-single", Source: s.b.String(),
		HasBegin: true, EntryProc: proc}
}

// safeNestedChain: Figure 1's swapped-wait variant — the full wait chain
// B -> A -> parent makes the nested accesses safe.
func safeNestedChain(r *rand.Rand, name string) TestCase {
	s := &w{}
	proc := "t_" + name
	s.ln("proc %s() {", proc)
	s.in()
	s.ln("var x: int = %d;", r.Intn(100))
	s.ln("var doneA$: sync bool;")
	s.ln("begin with (ref x) {")
	s.in()
	s.ln("var doneB$: sync bool;")
	s.ln("begin with (ref x) {")
	s.in()
	s.ln("writeln(x);")
	s.ln("doneB$ = true;")
	s.out()
	s.ln("}")
	s.ln("x += 1;")
	s.ln("doneB$;")
	s.ln("doneA$ = true;")
	s.out()
	s.ln("}")
	s.ln("doneA$;")
	s.out()
	s.ln("}")
	return TestCase{Name: name, Pattern: "safe-nestedchain", Source: s.b.String(),
		HasBegin: true, EntryProc: proc}
}

// ----------------------------------------------------------- sequential

// genSequential emits plain programs with no tasks: arithmetic, loops,
// branches, helper procedures, strings. They exercise the frontend at
// suite scale and must never warn.
func genSequential(r *rand.Rand, name string, variant int) TestCase {
	switch variant % 4 {
	case 0:
		return seqArith(r, name)
	case 1:
		return seqLoop(r, name)
	case 2:
		return seqProcCall(r, name)
	default:
		return seqBranch(r, name)
	}
}

func seqArith(r *rand.Rand, name string) TestCase {
	s := &w{}
	proc := "t_" + name
	s.ln("proc %s() {", proc)
	s.in()
	n := 2 + r.Intn(4)
	for i := 0; i < n; i++ {
		s.ln("var v%d: int = %d;", i, r.Intn(1000))
	}
	s.ln("var total: int = 0;")
	for i := 0; i < n; i++ {
		s.ln("total += v%d * %d;", i, 1+r.Intn(9))
	}
	s.ln("writeln(\"total=\", total);")
	s.out()
	s.ln("}")
	return TestCase{Name: name, Pattern: "seq-arith", Source: s.b.String(), EntryProc: proc}
}

func seqLoop(r *rand.Rand, name string) TestCase {
	s := &w{}
	proc := "t_" + name
	s.ln("proc %s() {", proc)
	s.in()
	s.ln("var acc: int = 0;")
	s.ln("for i in 1..%d {", 3+r.Intn(10))
	s.in()
	s.ln("acc += i * i;")
	s.out()
	s.ln("}")
	s.ln("var k: int = %d;", 1+r.Intn(5))
	s.ln("while (k > 0) {")
	s.in()
	s.ln("acc += k;")
	s.ln("k -= 1;")
	s.out()
	s.ln("}")
	s.ln("writeln(acc);")
	s.out()
	s.ln("}")
	return TestCase{Name: name, Pattern: "seq-loop", Source: s.b.String(), EntryProc: proc}
}

func seqProcCall(r *rand.Rand, name string) TestCase {
	s := &w{}
	proc := "t_" + name
	s.ln("proc helper_%s(a: int, b: int): int {", name)
	s.in()
	s.ln("return a * b + %d;", r.Intn(50))
	s.out()
	s.ln("}")
	s.ln("proc %s() {", proc)
	s.in()
	s.ln("var x: int = helper_%s(%d, %d);", name, 1+r.Intn(9), 1+r.Intn(9))
	s.ln("writeln(x);")
	s.out()
	s.ln("}")
	return TestCase{Name: name, Pattern: "seq-proc", Source: s.b.String(), EntryProc: proc}
}

func seqBranch(r *rand.Rand, name string) TestCase {
	s := &w{}
	proc := "t_" + name
	s.ln("config const limit%s = %d;", name, r.Intn(100))
	s.ln("proc %s() {", proc)
	s.in()
	s.ln("var x: int = %d;", r.Intn(200))
	s.ln("if (x > limit%s) {", name)
	s.in()
	s.ln("writeln(\"big \", x);")
	s.out()
	s.ln("} else {")
	s.in()
	s.ln("writeln(\"small \", x);")
	s.out()
	s.ln("}")
	s.out()
	s.ln("}")
	return TestCase{Name: name, Pattern: "seq-branch", Source: s.b.String(), EntryProc: proc}
}

var _ = fmt.Sprintf // keep fmt imported even if patterns change
