package corpus

import (
	"strings"
	"testing"
	"testing/quick"

	"uafcheck/internal/ast"
	"uafcheck/internal/parser"
	"uafcheck/internal/source"
)

func TestDeterministic(t *testing.T) {
	p := DefaultParams(99)
	a := Generate(p)
	b := Generate(p)
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Source != b[i].Source {
			t.Fatalf("case %d differs between runs", i)
		}
	}
}

func TestPopulationCounts(t *testing.T) {
	p := DefaultParams(1711)
	cases := Generate(p)
	if len(cases) != p.Tests {
		t.Fatalf("tests = %d, want %d", len(cases), p.Tests)
	}
	begins, unsafeCases, fpCases, trueSites := 0, 0, 0, 0
	for i := range cases {
		c := &cases[i]
		if c.HasBegin {
			begins++
		}
		if len(c.TrueSites) > 0 {
			unsafeCases++
			trueSites += len(c.TrueSites)
		}
		if c.WantWarn && len(c.TrueSites) == 0 {
			fpCases++
		}
	}
	if begins != p.BeginTests {
		t.Errorf("begin tests = %d, want %d", begins, p.BeginTests)
	}
	if unsafeCases != p.UnsafeTests {
		t.Errorf("unsafe tests = %d, want %d", unsafeCases, p.UnsafeTests)
	}
	if trueSites != p.TrueSites {
		t.Errorf("true sites = %d, want %d", trueSites, p.TrueSites)
	}
	if fpCases != p.AtomicFPTests {
		t.Errorf("atomic FP tests = %d, want %d", fpCases, p.AtomicFPTests)
	}
}

func TestAllProgramsParseAndResolve(t *testing.T) {
	cases := Generate(Params{Seed: 5, Tests: 400, BeginTests: 80,
		UnsafeTests: 12, TrueSites: 36, AtomicFPTests: 12, FalseSites: 60})
	for i := range cases {
		c := &cases[i]
		diags := &source.Diagnostics{}
		mod := parser.ParseSource(c.Name, c.Source, diags)
		if diags.HasErrors() {
			t.Fatalf("case %s fails to parse:\n%s\n%s", c.Name, diags, c.Source)
		}
		// Every program must contain its entry proc.
		if mod.Proc(c.EntryProc) == nil {
			t.Fatalf("case %s: entry proc %q missing", c.Name, c.EntryProc)
		}
		if c.HasBegin != ast.HasBegin(mod) {
			t.Fatalf("case %s: HasBegin label %t contradicts source", c.Name, c.HasBegin)
		}
	}
}

func TestTrueSitesPointAtRealLines(t *testing.T) {
	cases := Generate(Params{Seed: 21, Tests: 60, BeginTests: 30,
		UnsafeTests: 10, TrueSites: 30, AtomicFPTests: 5, FalseSites: 15})
	for i := range cases {
		c := &cases[i]
		if len(c.TrueSites) == 0 {
			continue
		}
		lines := strings.Split(c.Source, "\n")
		for _, s := range c.TrueSites {
			parts := strings.SplitN(s, ":", 2)
			if len(parts) != 2 {
				t.Fatalf("bad site %q", s)
			}
			varName := parts[0]
			var ln int
			if _, err := sscanInt(parts[1], &ln); err != nil {
				t.Fatalf("bad line in %q", s)
			}
			if ln < 1 || ln > len(lines) {
				t.Fatalf("site %q out of range in %s", s, c.Name)
			}
			if !strings.Contains(lines[ln-1], varName) {
				t.Fatalf("site %q: line %d %q does not mention %s",
					s, ln, lines[ln-1], varName)
			}
		}
	}
}

func sscanInt(s string, out *int) (int, error) {
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, errBadInt
		}
		n = n*10 + int(r-'0')
	}
	*out = n
	return 1, nil
}

var errBadInt = errInvalid("bad int")

type errInvalid string

func (e errInvalid) Error() string { return string(e) }

// Property: distribute always sums to the total with parts differing by
// at most one.
func TestDistributeProperty(t *testing.T) {
	check := func(total uint8, n uint8) bool {
		if n == 0 {
			return len(distribute(int(total), 0)) == 0
		}
		parts := distribute(int(total), int(n))
		if len(parts) != int(n) {
			return false
		}
		sum, min, max := 0, int(total)+1, -1
		for _, p := range parts {
			sum += p
			if p < min {
				min = p
			}
			if p > max {
				max = p
			}
		}
		return sum == int(total) && max-min <= 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestPatternsRotate(t *testing.T) {
	cases := Generate(Params{Seed: 2, Tests: 120, BeginTests: 60,
		UnsafeTests: 8, TrueSites: 16, AtomicFPTests: 4, FalseSites: 8})
	patterns := map[string]int{}
	for i := range cases {
		patterns[cases[i].Pattern]++
	}
	for _, want := range []string{
		"unsafe-nosync", "unsafe-nested-leak", "unsafe-trailing", "unsafe-branch-leak",
		"unsafe-hidden-nested",
		"atomic-handshake", "atomic-counter",
		"safe-syncblock", "safe-syncchain", "safe-inintent", "safe-single", "safe-nestedchain",
		"safe-nestedproc", "safe-syncedref", "safe-fenced-handshake",
		"seq-arith", "seq-loop", "seq-proc", "seq-branch",
	} {
		if patterns[want] == 0 {
			t.Errorf("pattern %s never generated: %v", want, patterns)
		}
	}
}

func TestWriterLineTracking(t *testing.T) {
	s := &w{}
	l1 := s.ln("one")
	s.in()
	l2 := s.ln("two %d", 42)
	s.out()
	l3 := s.ln("three")
	if l1 != 1 || l2 != 2 || l3 != 3 {
		t.Errorf("line numbers = %d %d %d", l1, l2, l3)
	}
	want := "one\n  two 42\nthree\n"
	if s.b.String() != want {
		t.Errorf("output = %q", s.b.String())
	}
	if site("x", 7) != "x:7" {
		t.Error("site format wrong")
	}
}
