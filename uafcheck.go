// Package uafcheck identifies potential use-after-free accesses of outer
// variables in fire-and-forget (begin) tasks of MiniChapel programs — a
// from-scratch reproduction of "Identifying Use-After-Free Variables in
// Fire-and-Forget Tasks" (Krishna & Litvinov, IPPS 2017).
//
// The package exposes the full pipeline of the paper:
//
//   - Analyze runs the compile-time pass: parse → resolve → lower (with
//     nested-procedure inlining) → Concurrent Control Flow Graph → prune
//     (rules A-D) → Parallel Program State exploration → warnings.
//   - CCFGText / CCFGDot / PPSTrace expose the intermediate artifacts the
//     paper draws in Figures 2, 3 and 7.
//   - ExploreSchedules runs the dynamic oracle: a task-parallel
//     interpreter with real sync-variable semantics and scope-lifetime
//     tracking, driven by seeded random or exhaustive schedulers.
//   - GenerateCorpus / RunTableI regenerate the paper's evaluation
//     (Table I) on a synthetic Chapel-1.11-style test suite.
//
// Quick start:
//
//	report, err := uafcheck.Analyze("prog.chpl", src)
//	if err != nil { ... }
//	for _, w := range report.Warnings {
//	    fmt.Println(w)
//	}
package uafcheck

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"uafcheck/internal/analysis"
	"uafcheck/internal/corpus"
	"uafcheck/internal/eval"
	"uafcheck/internal/obs"
	"uafcheck/internal/parser"
	"uafcheck/internal/pps"
	"uafcheck/internal/repair"
	"uafcheck/internal/runtime"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

// ------------------------------------------------------------- telemetry

// Metrics is a telemetry snapshot of one pipeline run: phase spans
// (parse, resolve, lower, ccfg-build, prune, pps-explore, oracle),
// counters (CCFG nodes, tasks pruned per rule, PPS states created /
// merged / forked, sync transitions by kind, oracle schedules) and
// gauges (peak exploration frontier). Every Analyze, ExploreSchedules
// and RunTableI call populates one on its report.
type Metrics = obs.Metrics

// MetricsSink receives Metrics snapshots; attach sinks via
// Options.MetricsSinks.
type MetricsSink = obs.Sink

// TextMetricsSink renders metrics human-readably.
func TextMetricsSink(w io.Writer) MetricsSink { return obs.TextSink{W: w} }

// JSONLinesMetricsSink appends one JSON object per span/counter/gauge —
// a machine-readable trace file that accumulates across runs.
func JSONLinesMetricsSink(w io.Writer) MetricsSink { return obs.JSONLSink{W: w} }

// PrometheusMetricsSink writes Prometheus text exposition format.
func PrometheusMetricsSink(w io.Writer) MetricsSink { return obs.PromSink{W: w} }

// Options configure the static analysis.
type Options struct {
	// Prune applies the paper's CCFG pruning rules A-D. Default true.
	Prune bool
	// MaxStates bounds the PPS exploration (0 = library default).
	MaxStates int
	// Trace records the PPS table (see Report.PPSTraces).
	Trace bool
	// DisableMerge turns off the identical-(ASN, state-table) merge
	// optimization of §III-C — exposed for the ablation benchmarks.
	DisableMerge bool
	// ModelAtomics enables the paper's future-work atomics extension:
	// atomic writes become non-blocking fill events and waitFor becomes a
	// SINGLE-READ-like wait (§IV-A sketch). With it on, atomic-handshake
	// programs are proven safe instead of producing false positives.
	ModelAtomics bool
	// CountAtomics (implies ModelAtomics) refines the extension further:
	// atomic variables used only monotonically become saturating
	// counters, so counting protocols (n fetchAdds before a waitFor(n))
	// verify as well.
	CountAtomics bool
	// MetricsSinks receive the run's Metrics snapshot when the analysis
	// finishes. The snapshot is attached to Report.Metrics regardless.
	MetricsSinks []MetricsSink
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options { return Options{Prune: true} }

func (o Options) internal() analysis.Options {
	return analysis.Options{
		Prune:        o.Prune,
		ModelAtomics: o.ModelAtomics || o.CountAtomics,
		CountAtomics: o.CountAtomics,
		PPS: pps.Options{
			MaxStates:    o.MaxStates,
			Trace:        o.Trace,
			DisableMerge: o.DisableMerge,
		},
	}
}

// Warning is one potentially dangerous outer-variable access.
type Warning struct {
	// Var is the outer variable's name.
	Var string
	// Task labels the begin task performing the access ("TASK A", ...).
	Task string
	// Proc is the analyzed root procedure.
	Proc string
	// Write distinguishes writes from reads.
	Write bool
	// Reason is "after-frontier" (the access can happen after the
	// variable's parallel frontier) or "never-synchronized" (no explored
	// execution orders the access before the parent's exit).
	Reason string
	// Pos is the access position as file:line:col.
	Pos string
	// AccessLine and DeclLine are 1-based source lines; AccessCol is the
	// 1-based source column of the access.
	AccessLine int
	AccessCol  int
	DeclLine   int
	// Prov is the explain-mode provenance: the CCFG node performing the
	// access, the sink PPS whose OV set still held it, and the
	// transition chain that reached that state.
	Prov *WarningProvenance
}

// WarningProvenance explains why a warning was emitted (see
// Warning.Prov and the -explain flag of cmd/uafcheck).
type WarningProvenance = pps.Provenance

// String renders the warning in compiler style.
func (w Warning) String() string {
	verb := "read"
	if w.Write {
		verb = "write"
	}
	return fmt.Sprintf("%s: warning: potentially dangerous %s of outer variable %q "+
		"(declared at line %d) inside %s of proc %s [%s]",
		w.Pos, verb, w.Var, w.DeclLine, w.Task, w.Proc, w.Reason)
}

// ProcStats summarizes the analysis of one root procedure.
type ProcStats struct {
	Proc              string
	Nodes             int
	Tasks             int
	PrunedTasks       int
	TrackedAccesses   int
	ProtectedAccesses int
	StatesCreated     int
	StatesProcessed   int
	StatesMerged      int
	Sinks             int
	Deadlocks         int
	Incomplete        bool
}

// Report is the outcome of analyzing one file.
type Report struct {
	// Warnings are the potentially dangerous accesses, in source order
	// per analyzed procedure.
	Warnings []Warning
	// Notes carry analysis-limit information (subsumed loops, recursion
	// cutoffs, potential deadlocks, style notes).
	Notes []string
	// Stats has one entry per analyzed root procedure.
	Stats []ProcStats
	// PPSTraces maps procedure names to their formatted PPS tables when
	// Options.Trace is set.
	PPSTraces map[string]string
	// Metrics is the run's telemetry snapshot: phase timings, pipeline
	// counters and gauges (see the obs sink flags of cmd/uafcheck).
	Metrics Metrics
}

// ErrFrontend is returned when the source fails to lex, parse or resolve;
// the error text lists the diagnostics.
var ErrFrontend = errors.New("uafcheck: frontend errors")

// Analyze runs the static analysis with default options.
func Analyze(filename, src string) (*Report, error) {
	return AnalyzeWithOptions(filename, src, DefaultOptions())
}

// AnalyzeWithOptions runs the static analysis.
func AnalyzeWithOptions(filename, src string, opts Options) (*Report, error) {
	rec := obs.New(opts.MetricsSinks...)
	in := opts.internal()
	in.KeepGraphs = opts.Trace
	in.Obs = rec
	res := analysis.AnalyzeSource(filename, src, in)
	if res.Diags.HasErrors() {
		return nil, fmt.Errorf("%w:\n%s", ErrFrontend, frontendErrors(res.Diags))
	}
	rep := &Report{}
	for _, w := range res.Warnings() {
		rep.Warnings = append(rep.Warnings, Warning{
			Var: w.Var, Task: w.Task, Proc: w.Proc, Write: w.Write,
			Reason: w.Reason.String(), Pos: w.Pos,
			AccessLine: w.AccessLine, AccessCol: w.AccessCol,
			DeclLine: w.DeclLine, Prov: w.Prov,
		})
	}
	for _, d := range res.Diags.All() {
		if d.Severity == source.Note {
			rep.Notes = append(rep.Notes, d.String())
		}
	}
	for _, pr := range res.Procs {
		rep.Stats = append(rep.Stats, ProcStats{
			Proc:              pr.Proc.Name.Name,
			Nodes:             pr.GraphStats.Nodes,
			Tasks:             pr.GraphStats.Tasks,
			PrunedTasks:       pr.GraphStats.PrunedTasks,
			TrackedAccesses:   pr.GraphStats.TrackedAccesses,
			ProtectedAccesses: pr.GraphStats.ProtectedAccesses,
			StatesCreated:     pr.PPSStats.StatesCreated,
			StatesProcessed:   pr.PPSStats.StatesProcessed,
			StatesMerged:      pr.PPSStats.StatesMerged,
			Sinks:             pr.PPSStats.Sinks,
			Deadlocks:         pr.Deadlocks,
			Incomplete:        pr.PPSStats.Incomplete,
		})
		if opts.Trace && pr.PPS != nil {
			if rep.PPSTraces == nil {
				rep.PPSTraces = make(map[string]string)
			}
			rep.PPSTraces[pr.Proc.Name.Name] = pps.FormatTrace(pr.PPS.Trace)
		}
	}
	rep.Metrics = rec.Snapshot()
	if err := rec.Flush(); err != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf("metrics sink error: %v", err))
	}
	return rep, nil
}

func frontendErrors(d *source.Diagnostics) string {
	var b strings.Builder
	for _, x := range d.All() {
		if x.Severity == source.Error {
			b.WriteString(x.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// CCFGText renders the Concurrent Control Flow Graph of one procedure as
// an indented listing (Figure 2 / Figure 7 regeneration).
func CCFGText(filename, src, proc string) (string, error) {
	return renderCCFG(filename, src, proc, false)
}

// CCFGDot renders the CCFG in Graphviz dot syntax.
func CCFGDot(filename, src, proc string) (string, error) {
	return renderCCFG(filename, src, proc, true)
}

func renderCCFG(filename, src, proc string, dot bool) (string, error) {
	in := analysis.DefaultOptions()
	in.KeepGraphs = true
	res := analysis.AnalyzeSource(filename, src, in)
	if res.Diags.HasErrors() {
		return "", fmt.Errorf("%w:\n%s", ErrFrontend, frontendErrors(res.Diags))
	}
	for _, pr := range res.Procs {
		if proc == "" || pr.Proc.Name.Name == proc {
			if dot {
				return pr.Graph.DOT(), nil
			}
			return pr.Graph.Text(), nil
		}
	}
	return "", fmt.Errorf("uafcheck: no analyzed procedure %q (only procs containing begin are analyzed)", proc)
}

// PPSStateDOT renders the explored Parallel Program State machine of one
// procedure in Graphviz dot syntax: states, rule-labeled transitions,
// sinks and unsafe residues.
func PPSStateDOT(filename, src, proc string) (string, error) {
	in := analysis.DefaultOptions()
	in.KeepGraphs = true
	in.PPS.Trace = true
	res := analysis.AnalyzeSource(filename, src, in)
	if res.Diags.HasErrors() {
		return "", fmt.Errorf("%w:\n%s", ErrFrontend, frontendErrors(res.Diags))
	}
	for _, pr := range res.Procs {
		if proc == "" || pr.Proc.Name.Name == proc {
			return pps.FormatTraceDOT(pr.PPS), nil
		}
	}
	return "", fmt.Errorf("uafcheck: no analyzed procedure %q", proc)
}

// PPSTrace renders the Parallel Program State table of one procedure
// (Figure 3 / Figure 7 regeneration).
func PPSTrace(filename, src, proc string) (string, error) {
	in := analysis.DefaultOptions()
	in.KeepGraphs = true
	in.PPS.Trace = true
	res := analysis.AnalyzeSource(filename, src, in)
	if res.Diags.HasErrors() {
		return "", fmt.Errorf("%w:\n%s", ErrFrontend, frontendErrors(res.Diags))
	}
	for _, pr := range res.Procs {
		if proc == "" || pr.Proc.Name.Name == proc {
			return pps.FormatTrace(pr.PPS.Trace), nil
		}
	}
	return "", fmt.Errorf("uafcheck: no analyzed procedure %q", proc)
}

// ---------------------------------------------------------------- oracle

// DynamicReport is the dynamic-oracle outcome.
type DynamicReport struct {
	// Runs is the number of schedules executed.
	Runs int
	// UAFSites lists observed use-after-free sites as "var:line".
	UAFSites []string
	// RaceSites lists observed data-race site pairs as
	// "var:line1/var:line2" (vector-clock detector).
	RaceSites []string
	// Deadlocks counts schedules that deadlocked.
	Deadlocks int
	// Exhausted is true when the full schedule space was covered.
	Exhausted bool
	// Metrics is the oracle's telemetry snapshot (oracle span, schedules
	// run, scheduler steps, deadlocks, distinct UAF sites).
	Metrics Metrics
}

// ObservedUAF reports whether the site (variable name + access line) was
// dynamically confirmed.
func (d *DynamicReport) ObservedUAF(varName string, line int) bool {
	key := fmt.Sprintf("%s:%d", varName, line)
	for _, s := range d.UAFSites {
		if s == key {
			return true
		}
	}
	return false
}

// ExploreSchedules runs the program under many schedules. With
// exhaustive=true it enumerates the schedule space depth-first up to runs
// executions; otherwise it samples runs seeded random schedules.
func ExploreSchedules(filename, src, entry string, runs int, seed int64, exhaustive bool) (*DynamicReport, error) {
	diags := &source.Diagnostics{}
	mod := parser.ParseSource(filename, src, diags)
	if diags.HasErrors() {
		return nil, fmt.Errorf("%w:\n%s", ErrFrontend, frontendErrors(diags))
	}
	info := sym.Resolve(mod, diags)
	if diags.HasErrors() {
		return nil, fmt.Errorf("%w:\n%s", ErrFrontend, frontendErrors(diags))
	}
	rec := obs.New()
	endOracle := rec.Span(obs.PhaseOracle)
	var er *runtime.ExploreResult
	if exhaustive {
		er = runtime.ExploreExhaustive(mod, info, entry, runs)
	} else {
		er = runtime.ExploreRandom(mod, info, entry, runs, seed)
	}
	endOracle()
	rep := &DynamicReport{Runs: er.Runs, Deadlocks: er.Deadlocks, Exhausted: exhaustive && !er.Truncated}
	for k := range er.UAF {
		rep.UAFSites = append(rep.UAFSites, k)
	}
	for k := range er.Races {
		rep.RaceSites = append(rep.RaceSites, k)
	}
	rep.Metrics = oracleMetrics(rec, er)
	return rep, nil
}

// oracleMetrics records the oracle counters and snapshots the recorder.
func oracleMetrics(rec *obs.Recorder, er *runtime.ExploreResult) Metrics {
	rec.Add(obs.CtrOracleSchedules, int64(er.Runs))
	rec.Add(obs.CtrOracleSteps, int64(er.TotalSteps))
	rec.Add(obs.CtrOracleDeadlocks, int64(er.Deadlocks))
	rec.Add(obs.CtrOracleUAFSites, int64(len(er.UAF)))
	return rec.Snapshot()
}

// ExploreSchedulesBounded enumerates schedules with at most `bound`
// preemptions each (iterative context bounding): exponentially fewer
// schedules than full exhaustion while retaining almost all bug-finding
// power — most use-after-free schedules need only one or two
// preemptions.
func ExploreSchedulesBounded(filename, src, entry string, maxRuns, bound int) (*DynamicReport, error) {
	diags := &source.Diagnostics{}
	mod := parser.ParseSource(filename, src, diags)
	if diags.HasErrors() {
		return nil, fmt.Errorf("%w:\n%s", ErrFrontend, frontendErrors(diags))
	}
	info := sym.Resolve(mod, diags)
	if diags.HasErrors() {
		return nil, fmt.Errorf("%w:\n%s", ErrFrontend, frontendErrors(diags))
	}
	rec := obs.New()
	endOracle := rec.Span(obs.PhaseOracle)
	er := runtime.ExploreBounded(mod, info, entry, maxRuns, bound)
	endOracle()
	rep := &DynamicReport{Runs: er.Runs, Deadlocks: er.Deadlocks, Exhausted: !er.Truncated}
	for k := range er.UAF {
		rep.UAFSites = append(rep.UAFSites, k)
	}
	for k := range er.Races {
		rep.RaceSites = append(rep.RaceSites, k)
	}
	rep.Metrics = oracleMetrics(rec, er)
	return rep, nil
}

// RunProgram executes the program once under a seeded random schedule and
// returns its writeln output (examples and demos).
func RunProgram(filename, src, entry string, seed int64) ([]string, error) {
	diags := &source.Diagnostics{}
	mod := parser.ParseSource(filename, src, diags)
	if diags.HasErrors() {
		return nil, fmt.Errorf("%w:\n%s", ErrFrontend, frontendErrors(diags))
	}
	info := sym.Resolve(mod, diags)
	if diags.HasErrors() {
		return nil, fmt.Errorf("%w:\n%s", ErrFrontend, frontendErrors(diags))
	}
	r := runtime.Run(mod, info, runtime.Config{
		Entry:         entry,
		CaptureOutput: true,
		Policy:        runtime.NewRandomPolicy(seed),
	})
	return r.Output, nil
}

// ExecuteTraced runs the program once under a seeded random schedule and
// returns its writeln output plus the execution event trace (task spawns,
// sync-variable transitions, blocking, scope deaths, use-after-free
// hits) — the dynamic counterpart of the PPS table.
func ExecuteTraced(filename, src, entry string, seed int64) (output, trace []string, err error) {
	diags := &source.Diagnostics{}
	mod := parser.ParseSource(filename, src, diags)
	if diags.HasErrors() {
		return nil, nil, fmt.Errorf("%w:\n%s", ErrFrontend, frontendErrors(diags))
	}
	info := sym.Resolve(mod, diags)
	if diags.HasErrors() {
		return nil, nil, fmt.Errorf("%w:\n%s", ErrFrontend, frontendErrors(diags))
	}
	r := runtime.Run(mod, info, runtime.Config{
		Entry:         entry,
		CaptureOutput: true,
		Trace:         true,
		Policy:        runtime.NewRandomPolicy(seed),
	})
	return r.Output, r.Trace, nil
}

// ---------------------------------------------------------------- corpus

// CorpusParams parameterize the synthetic test-suite generator; see
// internal/corpus for the population model.
type CorpusParams = corpus.Params

// CorpusCase is one generated test program.
type CorpusCase = corpus.TestCase

// DefaultCorpusParams reproduce the paper's Table I population.
func DefaultCorpusParams(seed int64) CorpusParams { return corpus.DefaultParams(seed) }

// GenerateCorpus builds the synthetic suite.
func GenerateCorpus(p CorpusParams) []CorpusCase { return corpus.Generate(p) }

// TableI mirrors the paper's Table I.
type TableI = eval.TableI

// RunTableI analyzes the corpus and assembles Table I. The returned
// string is the per-pattern breakdown.
func RunTableI(cases []CorpusCase, opts Options) (TableI, string) {
	table, det := eval.RunTableI(cases, opts.internal())
	return table, det.FormatPatternBreakdown()
}

// CorpusTelemetry is the aggregate evaluation telemetry: per-pattern
// analysis timing and PPS state-count aggregates with power-of-two
// histograms. It serializes to the BENCH_corpus.json schema of
// cmd/uafcorpus.
type CorpusTelemetry = eval.Telemetry

// RunTableIWithTelemetry runs the evaluation like RunTableI and also
// returns the aggregate telemetry report.
func RunTableIWithTelemetry(cases []CorpusCase, opts Options) (TableI, *CorpusTelemetry, string) {
	table, det := eval.RunTableI(cases, opts.internal())
	return table, det.Telemetry(), det.FormatPatternBreakdown()
}

// BaselineComparison runs the §VI baselines over the corpus's begin-task
// cases and formats the comparison.
func BaselineComparison(cases []CorpusCase, opts Options) string {
	rep := eval.RunBaselines(cases, opts.internal())
	return rep.Format()
}

// ---------------------------------------------------------------- repair

// RepairStep records one applied synchronization patch.
type RepairStep struct {
	// Strategy is "token-chain", "sync-wrap" or "sync-wrap-chain".
	Strategy string
	Proc     string
	Task     string
	// Token names the introduced sync variable for token-chain steps.
	Token string
}

// RepairResult is the outcome of automatic warning repair.
type RepairResult struct {
	// Fixed is the repaired source.
	Fixed string
	// Steps lists the accepted patches in order.
	Steps []RepairStep
	// InitialWarnings / RemainingWarnings count before and after.
	InitialWarnings   int
	RemainingWarnings int
	// Rejected explains candidates the verifier refused.
	Rejected []string
}

// Clean reports whether the repaired source analyzes without warnings.
func (r *RepairResult) Clean() bool { return r.RemainingWarnings == 0 }

// RepairSource synthesizes synchronization fixes for every warning
// (§VII: "optimize the amount and position of synchronization points").
// Each candidate patch is verified by re-analysis AND bounded schedule
// exploration before being accepted; see internal/repair for the
// strategy catalogue (token chains with branch-total protocols,
// sync-block fences).
func RepairSource(filename, src string, opts Options) (*RepairResult, error) {
	res, err := repair.Repair(filename, src, opts.internal())
	if err != nil {
		return nil, err
	}
	out := &RepairResult{
		Fixed:             res.Fixed,
		InitialWarnings:   res.InitialWarnings,
		RemainingWarnings: res.RemainingWarnings,
		Rejected:          res.Rejected,
	}
	for _, s := range res.Steps {
		out.Steps = append(out.Steps, RepairStep{
			Strategy: string(s.Strategy), Proc: s.Proc, Task: s.Task, Token: s.Token,
		})
	}
	return out, nil
}
