// Package uafcheck identifies potential use-after-free accesses of outer
// variables in fire-and-forget (begin) tasks of MiniChapel programs — a
// from-scratch reproduction of "Identifying Use-After-Free Variables in
// Fire-and-Forget Tasks" (Krishna & Litvinov, IPPS 2017).
//
// The package exposes the full pipeline of the paper:
//
//   - Analyze runs the compile-time pass: parse → resolve → lower (with
//     nested-procedure inlining) → Concurrent Control Flow Graph → prune
//     (rules A-D) → Parallel Program State exploration → warnings.
//   - CCFGText / CCFGDot / PPSTrace expose the intermediate artifacts the
//     paper draws in Figures 2, 3 and 7.
//   - ExploreSchedules runs the dynamic oracle: a task-parallel
//     interpreter with real sync-variable semantics and scope-lifetime
//     tracking, driven by seeded random or exhaustive schedulers.
//   - GenerateCorpus / RunTableI regenerate the paper's evaluation
//     (Table I) on a synthetic Chapel-1.11-style test suite.
//
// Quick start:
//
//	report, err := uafcheck.Analyze("prog.chpl", src)
//	if err != nil { ... }
//	for _, w := range report.Warnings {
//	    fmt.Println(w)
//	}
package uafcheck

import (
	"context"
	"fmt"
	"io"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"uafcheck/internal/analysis"
	"uafcheck/internal/batch"
	"uafcheck/internal/cache"
	"uafcheck/internal/corpus"
	"uafcheck/internal/eval"
	"uafcheck/internal/obs"
	"uafcheck/internal/parser"
	"uafcheck/internal/pps"
	"uafcheck/internal/runtime"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

// Version identifies the analyzer release. It participates in cache
// content addresses (the report cache and the Analyzer's per-procedure
// memo store), so results cached by one version are never served by
// another.
const Version = "0.7.0"

// ------------------------------------------------------------- telemetry

// Metrics is a telemetry snapshot of one pipeline run: phase spans
// (parse, resolve, lower, ccfg-build, prune, pps-explore, oracle),
// counters (CCFG nodes, tasks pruned per rule, PPS states created /
// merged / forked, sync transitions by kind, oracle schedules) and
// gauges (peak exploration frontier). Every Analyze, ExploreSchedules
// and RunTableI call populates one on its report.
type Metrics = obs.Metrics

// MetricsSink receives Metrics snapshots; attach sinks via
// Options.MetricsSinks.
type MetricsSink = obs.Sink

// TextMetricsSink renders metrics human-readably.
func TextMetricsSink(w io.Writer) MetricsSink { return obs.TextSink{W: w} }

// JSONLinesMetricsSink appends one JSON object per span/counter/gauge —
// a machine-readable trace file that accumulates across runs.
func JSONLinesMetricsSink(w io.Writer) MetricsSink { return obs.JSONLSink{W: w} }

// PrometheusMetricsSink writes Prometheus text exposition format.
func PrometheusMetricsSink(w io.Writer) MetricsSink { return obs.PromSink{W: w} }

// Options configure the static analysis.
type Options struct {
	// Prune applies the paper's CCFG pruning rules A-D. Default true.
	Prune bool
	// MaxStates bounds the PPS exploration (0 = library default).
	MaxStates int
	// Trace records the PPS table (see Report.PPSTraces).
	Trace bool
	// DisableMerge turns off the identical-(ASN, state-table) merge
	// optimization of §III-C — exposed for the ablation benchmarks.
	DisableMerge bool
	// ModelAtomics enables the paper's future-work atomics extension:
	// atomic writes become non-blocking fill events and waitFor becomes a
	// SINGLE-READ-like wait (§IV-A sketch). With it on, atomic-handshake
	// programs are proven safe instead of producing false positives.
	ModelAtomics bool
	// CountAtomics (implies ModelAtomics) refines the extension further:
	// atomic variables used only monotonically become saturating
	// counters, so counting protocols (n fetchAdds before a waitFor(n))
	// verify as well.
	CountAtomics bool
	// Parallelism is the number of concurrent PPS exploration workers
	// per analyzed procedure. 0 means GOMAXPROCS for single-file calls;
	// batch runs default to 1 instead (file-level workers already
	// saturate the machine — total concurrency ≈ Workers × Parallelism).
	// Results are identical for every value: exploration proceeds in
	// deterministic bulk-synchronous waves, so the warning set, stats and
	// traces never depend on the worker count.
	Parallelism int
	// Tracing records a hierarchical span tree for the run: the pipeline
	// gets a per-file trace with a deterministic ID (derived from file
	// name + content) and every phase — parse through PPS waves —
	// attaches a span. The completed tree lands on Report.Metrics.Trace
	// and flows to JSONL metrics sinks (cmd/uafcheck -trace-out). When
	// the caller's context already carries an obs.Trace (a uafserve
	// request), spans attach to that ambient trace instead and
	// Metrics.Trace stays empty — the request owns its tree. Tracing
	// never changes analysis results and does not participate in cache
	// keys.
	Tracing bool
	// InlineLowering switches the lowering of nested-procedure calls back
	// to the legacy per-call-site inliner instead of the template-based
	// summary instantiation that is now the default. Both modes produce
	// byte-identical reports by construction (the property tests enforce
	// it), so the knob exists for A/B verification and as an escape
	// hatch; it deliberately does not participate in cache or memo
	// fingerprints.
	InlineLowering bool
	// Cache, when non-nil, memoizes complete analysis reports by content
	// address (source text + effective options + tool Version). Hits
	// return a defensive clone and skip the pipeline entirely; degraded
	// (incomplete) results are never cached. See NewCache.
	Cache *Cache
	// MetricsSinks receive the run's Metrics snapshot when the analysis
	// finishes. The snapshot is attached to Report.Metrics regardless.
	MetricsSinks []MetricsSink
	// Deadline bounds the wall-clock time of one Analyze call (0 = none).
	// When it fires, the analysis degrades instead of truncating: every
	// access not yet proven safe is reported as a conservative warning
	// and Report.Degraded records the reason.
	Deadline time.Duration
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options { return Options{Prune: true} }

func (o Options) internal() analysis.Options {
	return analysis.Options{
		Prune:          o.Prune,
		ModelAtomics:   o.ModelAtomics || o.CountAtomics,
		CountAtomics:   o.CountAtomics,
		RecordTrace:    o.Tracing,
		InlineLowering: o.InlineLowering,
		PPS: pps.Options{
			MaxStates:    o.MaxStates,
			Trace:        o.Trace,
			DisableMerge: o.DisableMerge,
			Parallelism:  o.Parallelism,
		},
	}
}

// Warning is one potentially dangerous outer-variable access.
//
// The struct marshals to a stable, round-trippable JSON object (the
// wire DTO shared by cmd/uafcheck -format=json and the uafserve
// daemon): field order is fixed, zero Prov is omitted, and re-encoding
// a decoded warning reproduces the input bytes.
type Warning struct {
	// Var is the outer variable's name.
	Var string `json:"var"`
	// Task labels the begin task performing the access ("TASK A", ...).
	Task string `json:"task"`
	// Proc is the analyzed root procedure.
	Proc string `json:"proc"`
	// Write distinguishes writes from reads.
	Write bool `json:"write"`
	// Reason is "after-frontier" (the access can happen after the
	// variable's parallel frontier) or "never-synchronized" (no explored
	// execution orders the access before the parent's exit).
	Reason string `json:"reason"`
	// Pos is the access position as file:line:col.
	Pos string `json:"pos"`
	// AccessLine and DeclLine are 1-based source lines; AccessCol is the
	// 1-based source column of the access.
	AccessLine int `json:"access_line"`
	AccessCol  int `json:"access_col"`
	DeclLine   int `json:"decl_line"`
	// Conservative marks a degradation-ladder warning: the exploration
	// stopped early (see Report.Degraded) and the access is flagged
	// because it was not proven safe, not because a dangerous
	// serialization was found. Conservative warnings are always a
	// superset of the warnings a completed run would report.
	Conservative bool `json:"conservative,omitempty"`
	// Prov is the explain-mode provenance: the CCFG node performing the
	// access, the sink PPS whose OV set still held it, and the
	// transition chain that reached that state.
	Prov *WarningProvenance `json:"prov,omitempty"`
}

// WarningProvenance explains why a warning was emitted (see
// Warning.Prov and the -explain flag of cmd/uafcheck).
type WarningProvenance = pps.Provenance

// String renders the warning in compiler style.
func (w Warning) String() string {
	verb := "read"
	if w.Write {
		verb = "write"
	}
	suffix := ""
	if w.Conservative {
		suffix = " (conservative: analysis degraded)"
	}
	return fmt.Sprintf("%s: warning: potentially dangerous %s of outer variable %q "+
		"(declared at line %d) inside %s of proc %s [%s]%s",
		w.Pos, verb, w.Var, w.DeclLine, w.Task, w.Proc, w.Reason, suffix)
}

// SortWarnings orders warnings by (file, line, column, variable) — the
// canonical presentation order used by cmd/uafcheck output and by the
// uafserve wire encoding, so every surface renders the same warning
// list in the same sequence.
func SortWarnings(ws []Warning) {
	sort.SliceStable(ws, func(i, j int) bool {
		a, b := ws[i], ws[j]
		if af, bf := posFile(a.Pos), posFile(b.Pos); af != bf {
			return af < bf
		}
		if a.AccessLine != b.AccessLine {
			return a.AccessLine < b.AccessLine
		}
		if a.AccessCol != b.AccessCol {
			return a.AccessCol < b.AccessCol
		}
		return a.Var < b.Var
	})
}

// posFile extracts the file component of a "file:line:col" position.
// File names may themselves contain colons, so it cuts from the right.
func posFile(pos string) string {
	s := pos
	for i := 0; i < 2; i++ {
		if j := strings.LastIndexByte(s, ':'); j >= 0 {
			s = s[:j]
		}
	}
	return s
}

// ProcStats summarizes the analysis of one root procedure.
type ProcStats struct {
	Proc              string `json:"proc"`
	Nodes             int    `json:"nodes"`
	Tasks             int    `json:"tasks"`
	PrunedTasks       int    `json:"pruned_tasks"`
	TrackedAccesses   int    `json:"tracked_accesses"`
	ProtectedAccesses int    `json:"protected_accesses"`
	StatesCreated     int    `json:"states_created"`
	StatesProcessed   int    `json:"states_processed"`
	StatesMerged      int    `json:"states_merged"`
	Sinks             int    `json:"sinks"`
	Deadlocks         int    `json:"deadlocks"`
	Incomplete        bool   `json:"incomplete,omitempty"`
	// StopReason says why the exploration stopped early ("budget",
	// "deadline", "cancelled"); empty when Incomplete is false.
	StopReason string `json:"stop_reason,omitempty"`
}

// DegradeReason identifies the rung of the degradation ladder that
// fired (Report.Degraded.Reason).
type DegradeReason string

// The degradation ladder, least to most severe.
const (
	// DegradeBudget: the PPS exploration exhausted MaxStates.
	DegradeBudget DegradeReason = "budget"
	// DegradeDeadline: Options.Deadline (or the context's deadline)
	// expired mid-analysis.
	DegradeDeadline DegradeReason = "deadline"
	// DegradeCancelled: the caller's context was cancelled.
	DegradeCancelled DegradeReason = "cancelled"
	// DegradePanic: a pipeline stage panicked; the panic was recovered
	// and converted into a structured Crash.
	DegradePanic DegradeReason = "panic"
)

// Crash is a recovered pipeline panic: the per-file structured
// diagnostic that replaces a process crash.
type Crash struct {
	// Proc is the procedure being analyzed ("" when the frontend died).
	Proc string `json:"proc,omitempty"`
	// Phase is the pipeline phase that panicked (parse, resolve, lower,
	// ccfg-build, pps-explore, report).
	Phase string `json:"phase"`
	// Err renders the panic value.
	Err string `json:"err"`
	// Stack is the recovered goroutine stack.
	Stack string `json:"stack,omitempty"`
}

// Degradation explains an incomplete-but-sound result. Its presence
// means the warning list over-approximates: every real issue is still
// reported (soundness is preserved), but conservative warnings may be
// false positives.
type Degradation struct {
	// Reason is the most severe rung that fired:
	// panic > cancelled > deadline > budget.
	Reason DegradeReason `json:"reason"`
	// Procs lists the procedures whose exploration degraded.
	Procs []string `json:"procs,omitempty"`
	// Crashes carries the recovered panics when Reason is DegradePanic.
	Crashes []Crash `json:"crashes,omitempty"`
}

// Report is the outcome of analyzing one file.
//
// Report marshals to stable JSON: map-backed fields (PPSTraces, the
// Metrics maps) encode with sorted keys, empty optional fields are
// omitted, and Marshal(Unmarshal(Marshal(r))) is byte-identical to
// Marshal(r). The disk cache tier and the uafserve wire format both
// rely on this.
type Report struct {
	// Warnings are the potentially dangerous accesses, in source order
	// per analyzed procedure.
	Warnings []Warning `json:"warnings,omitempty"`
	// Notes carry analysis-limit information (subsumed loops, recursion
	// cutoffs, potential deadlocks, style notes).
	Notes []string `json:"notes,omitempty"`
	// Truncated is set when any analyzed procedure's lowering hit the
	// nested-call recursion cutoff (a cycle through nested procedures the
	// summary templates cannot expand), so deeper call chains were
	// dropped. The corresponding "recursive call ... not inlined further"
	// note pinpoints the site; before 0.7.0 only the note existed.
	Truncated bool `json:"truncated,omitempty"`
	// Stats has one entry per analyzed root procedure.
	Stats []ProcStats `json:"stats,omitempty"`
	// PPSTraces maps procedure names to their formatted PPS tables when
	// Options.Trace is set.
	PPSTraces map[string]string `json:"pps_traces,omitempty"`
	// Metrics is the run's telemetry snapshot: phase timings, pipeline
	// counters and gauges (see the obs sink flags of cmd/uafcheck).
	Metrics Metrics `json:"metrics"`
	// Degraded is non-nil when the analysis stopped before exhausting
	// the state space (budget, deadline, cancellation or a recovered
	// panic). The result is still sound — conservative warnings
	// over-approximate a full run — but callers that need completeness
	// must check this field (cmd/uafcheck maps it to exit code 2).
	Degraded *Degradation `json:"degraded,omitempty"`
}

// Analyze runs the static analysis with default options.
func Analyze(filename, src string) (*Report, error) {
	return AnalyzeWithOptions(filename, src, DefaultOptions())
}

// AnalyzeWithOptions runs the static analysis.
//
// The call never panics: a crash anywhere in the pipeline is recovered
// and reported through Report.Degraded (reason DegradePanic), so batch
// drivers can keep going past a pathological input.
//
// Deprecated: use AnalyzeContext with functional options. This shim
// remains for v1 callers and behaves identically (minus the removed
// Options.Context field — it always runs under context.Background).
func AnalyzeWithOptions(filename, src string, opts Options) (*Report, error) {
	return analyzeWith(context.Background(), filename, src, opts)
}

// analyzeWith is the shared single-file driver behind AnalyzeContext
// and the deprecated AnalyzeWithOptions shim.
func analyzeWith(ctx context.Context, filename, src string, opts Options) (rep *Report, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Deadline)
		defer cancel()
	}
	defer func() {
		// Last-resort fault isolation for crashes outside the per-proc
		// pipeline (frontend, report assembly). Per-proc panics are
		// already recovered and attributed by internal/analysis.
		if r := recover(); r != nil {
			rep = &Report{Degraded: &Degradation{
				Reason: DegradePanic,
				Crashes: []Crash{{
					Phase: "frontend",
					Err:   fmt.Sprint(r),
					Stack: string(debug.Stack()),
				}},
			}}
			err = nil
		}
	}()
	rec := obs.New(opts.MetricsSinks...)
	in := opts.internal()
	in.KeepGraphs = opts.Trace
	in.Obs = rec
	in.Ctx = ctx

	var key cache.Key
	if opts.Cache != nil {
		key = reportKey(filename, src, in)
		hit, ok, lookupNS := cacheLookup(ctx, opts.Cache, key, rec)
		if ok {
			return cacheHit(hit, opts.MetricsSinks, lookupNS), nil
		}
		rec.Add(obs.CtrCacheMisses, 1)
	}

	res := analysis.AnalyzeSource(filename, src, in)
	if res.Diags.HasErrors() {
		return nil, fmt.Errorf("%w:\n%s", ErrParse, frontendErrors(res.Diags))
	}
	rep = buildReport(res, opts)
	if opts.Cache != nil && rep.Degraded == nil {
		rec.Add(obs.CtrCacheStores, 1)
	}
	rep.Metrics = rec.Snapshot()
	if err := rec.Flush(); err != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf("metrics sink error: %v", err))
	}
	// Only complete results are cached: a degraded report depends on the
	// budget/deadline race of this particular run, so serving it later
	// could mask a complete result the caller's options would produce.
	if opts.Cache != nil && rep.Degraded == nil {
		cachePut(opts.Cache, key, rep)
	}
	return rep, nil
}

// cacheLookup times one report-cache consult, records the latency on
// the recorder (cache.lookup_ns) and, when ctx carries a trace, as a
// "cache-lookup" span with the outcome attribute.
func cacheLookup(ctx context.Context, c *Cache, key cache.Key, rec *obs.Recorder) (*Report, bool, int64) {
	_, sp := obs.StartSpan(ctx, "cache-lookup")
	start := time.Now()
	hit, ok := c.get(key)
	lookupNS := time.Since(start).Nanoseconds()
	rec.Observe(obs.HistCacheLookupNS, lookupNS)
	if ok {
		sp.SetAttr("outcome", "hit")
	} else {
		sp.SetAttr("outcome", "miss")
	}
	sp.End()
	return hit, ok, lookupNS
}

// cachePut stores a completed report, stripping the run's span tree
// first (Put clones, so the caller's report keeps its trace): a trace
// describes one run, and serving it with a later hit would misattribute
// that run's spans to the hit.
func cachePut(c *Cache, key cache.Key, rep *Report) {
	if rep.Metrics.Trace == nil {
		c.put(key, rep)
		return
	}
	tr := rep.Metrics.Trace
	rep.Metrics.Trace = nil
	c.put(key, rep)
	rep.Metrics.Trace = tr
}

// cacheHit finalizes a report served from the cache: the clone keeps the
// original run's telemetry (spans, pipeline counters, its own cache.misses
// rung), gains a cache.hits mark plus this consult's lookup latency, and
// is emitted to this call's sinks. The lookup histogram is replaced, not
// merged — the stored report's own (miss) lookup belongs to the run that
// produced it, not to this hit.
func cacheHit(rep *Report, sinks []MetricsSink, lookupNS int64) *Report {
	if rep.Metrics.Counters == nil {
		rep.Metrics.Counters = make(map[string]int64)
	}
	rep.Metrics.Counters[obs.CtrCacheHits]++
	if rep.Metrics.Hists == nil {
		rep.Metrics.Hists = make(map[string]obs.Histogram)
	}
	var h obs.Histogram
	h.Observe(lookupNS)
	rep.Metrics.Hists[obs.HistCacheLookupNS] = h
	for _, s := range sinks {
		if err := s.Emit(rep.Metrics); err != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("metrics sink error: %v", err))
		}
	}
	return rep
}

// buildReport converts an internal analysis result into the public
// Report shape (shared by the single-file and batch entry points).
func buildReport(res *analysis.Result, opts Options) *Report {
	rep := &Report{}
	for _, w := range res.Warnings() {
		rep.Warnings = append(rep.Warnings, Warning{
			Var: w.Var, Task: w.Task, Proc: w.Proc, Write: w.Write,
			Reason: w.Reason.String(), Pos: w.Pos,
			AccessLine: w.AccessLine, AccessCol: w.AccessCol,
			DeclLine: w.DeclLine, Conservative: w.Conservative, Prov: w.Prov,
		})
	}
	for _, d := range res.Diags.All() {
		if d.Severity == source.Note {
			rep.Notes = append(rep.Notes, d.String())
		}
	}
	for _, pr := range res.Procs {
		if pr.Truncated {
			rep.Truncated = true
		}
		rep.Stats = append(rep.Stats, ProcStats{
			Proc:              pr.Proc.Name.Name,
			Nodes:             pr.GraphStats.Nodes,
			Tasks:             pr.GraphStats.Tasks,
			PrunedTasks:       pr.GraphStats.PrunedTasks,
			TrackedAccesses:   pr.GraphStats.TrackedAccesses,
			ProtectedAccesses: pr.GraphStats.ProtectedAccesses,
			StatesCreated:     pr.PPSStats.StatesCreated,
			StatesProcessed:   pr.PPSStats.StatesProcessed,
			StatesMerged:      pr.PPSStats.StatesMerged,
			Sinks:             pr.PPSStats.Sinks,
			Deadlocks:         pr.Deadlocks,
			Incomplete:        pr.PPSStats.Incomplete,
			StopReason:        string(pr.PPSStats.Stop),
		})
		if opts.Trace && pr.PPS != nil {
			if rep.PPSTraces == nil {
				rep.PPSTraces = make(map[string]string)
			}
			rep.PPSTraces[pr.Proc.Name.Name] = pps.FormatTrace(pr.PPS.Trace)
		}
	}
	rep.Degraded = degradationOf(res)
	return rep
}

// degradationOf maps an analysis result to the public Degradation
// summary (nil when the run completed).
func degradationOf(res *analysis.Result) *Degradation {
	reason := res.Degraded()
	if reason == pps.StopNone {
		return nil
	}
	deg := &Degradation{Reason: DegradeReason(reason)}
	for _, pr := range res.Procs {
		if pr.PPSStats.Incomplete {
			deg.Procs = append(deg.Procs, pr.Proc.Name.Name)
		}
	}
	for _, c := range res.Crashes {
		deg.Procs = append(deg.Procs, c.Proc)
		deg.Crashes = append(deg.Crashes, Crash{
			Proc: c.Proc, Phase: c.Phase, Err: c.Err, Stack: c.Stack,
		})
	}
	return deg
}

func frontendErrors(d *source.Diagnostics) string {
	var b strings.Builder
	for _, x := range d.All() {
		if x.Severity == source.Error {
			b.WriteString(x.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// ---------------------------------------------------------------- batch

// FileInput is one file of a batch analysis.
type FileInput struct {
	// Name labels the file in warnings and reports (usually its path).
	Name string
	// Src is the source text.
	Src string
}

// BatchOptions configure the fault-isolated parallel driver.
type BatchOptions struct {
	// Workers is the pool size; 0 means GOMAXPROCS.
	Workers int
	// FileTimeout bounds each per-file attempt's wall clock (0 = none).
	FileTimeout time.Duration
	// Retries is how many extra attempts a file earns after a deadline
	// hit, each with a 4×-smaller PPS state budget, converging on a
	// deterministic budget-degraded result instead of a flaky timeout.
	Retries int
	// Context cancels the whole batch; files not yet analyzed degrade
	// immediately to conservative results instead of being dropped.
	Context context.Context
	// OnFile, when set, receives each file's finished report as soon as
	// the worker pool completes it (cache hits fire first, before any
	// worker runs). i is the file's index in the input slice. Callbacks
	// run on worker goroutines and may overlap — the callee must be safe
	// for concurrent use. The uafserve daemon streams NDJSON batch
	// responses through this hook.
	OnFile func(i int, fr FileReport)
	// analyze, when set (via WithAnalyzer), replaces the per-attempt
	// pipeline with an Analyzer handle's incremental engine.
	analyze func(name, src string, in analysis.Options) *analysis.Result
}

// BatchSummary is the aggregate accounting of one batch run: files OK /
// degraded / crashed / timed out / frontend errors, retries spent, and
// warning totals.
type BatchSummary = batch.Summary

// FileReport is one file's outcome in a batch run.
type FileReport struct {
	// Name echoes the input name.
	Name string
	// Status classifies the outcome: "ok", "degraded", "timed-out",
	// "crashed" or "error".
	Status string
	// Report is the file's analysis report, structurally identical to
	// what the single-file Analyze entry points return: nil only when the
	// frontend rejected the file (Err is set); for every other status —
	// including hung-and-abandoned analyses — it is non-nil, and for
	// degraded statuses Report.Degraded carries the ladder reason.
	Report *Report
	// Err is set for frontend-rejected files.
	Err error
	// Cached marks a report served from Options.Cache without running
	// the pipeline (Attempts is 0 for such files).
	Cached bool
	// Attempts counts analysis runs (retries included).
	Attempts int
	// Duration is the file's wall clock across attempts.
	Duration time.Duration
}

// BatchReport is the outcome of AnalyzeFiles.
type BatchReport struct {
	// Files holds one report per input, index-aligned.
	Files []FileReport
	// Summary is the aggregate accounting.
	Summary BatchSummary
	// Metrics aggregates per-file telemetry plus the batch counters.
	Metrics Metrics
}

// ExitCode maps the batch outcome onto the documented uafcheck shell
// contract: 0 = clean, 1 = exact warnings, 2 = degraded/incomplete
// somewhere (conservative warnings, timeouts, recovered crashes),
// 3 = input or I/O errors. Higher codes dominate.
func (b *BatchReport) ExitCode() int {
	s := b.Summary
	switch {
	case s.Errors > 0:
		return 3
	case s.Degradations() > 0:
		return 2
	case s.Warnings > 0:
		return 1
	}
	return 0
}

// AnalyzeFiles analyzes many files on a worker pool with per-file
// deadlines, bounded retry-with-smaller-budget, and panic isolation: one
// pathological or crashing input degrades that file's report and never
// takes down the batch. Results are index-aligned with files.
//
// Options.MetricsSinks are shared across workers (wrapped to serialize
// concurrent emits) and receive one snapshot per file; BatchReport.
// Metrics carries the merged aggregate.
//
// Deprecated: use AnalyzeFilesContext with functional options. This
// shim remains for v1 callers and behaves identically.
func AnalyzeFiles(files []FileInput, opts Options, bopts BatchOptions) *BatchReport {
	shared := make([]MetricsSink, len(opts.MetricsSinks))
	for i, s := range opts.MetricsSinks {
		shared[i] = obs.Synchronized(s)
	}
	in := opts.internal()
	in.KeepGraphs = opts.Trace

	rec := obs.New() // batch-level counters and span

	// Cache pre-pass: serve hits directly and hand the batch driver only
	// the misses. hits is index-aligned with files; missOf maps the
	// compacted batch index back to the original one.
	hits := make([]*Report, len(files))
	keys := make([]cache.Key, len(files))
	var missOf []int
	var bfiles []batch.File
	for i, f := range files {
		if opts.Cache != nil {
			keys[i] = reportKey(f.Name, f.Src, in)
			if rep, ok, lookupNS := cacheLookup(bopts.Context, opts.Cache, keys[i], rec); ok {
				hits[i] = cacheHit(rep, opts.MetricsSinks, lookupNS)
				continue
			}
		}
		missOf = append(missOf, i)
		bfiles = append(bfiles, batch.File{Name: f.Name, Src: f.Src})
	}

	frs := make([]FileReport, len(files))
	// Cached files first: complete-by-construction reports, zero
	// attempts, streamed before any worker starts.
	for i, rep := range hits {
		if rep == nil {
			continue
		}
		frs[i] = FileReport{
			Name:   files[i].Name,
			Status: batch.OK.String(),
			Report: rep,
			Cached: true,
		}
		if bopts.OnFile != nil {
			bopts.OnFile(i, frs[i])
		}
	}

	recs := make([]*obs.Recorder, len(files))
	// convert maps one classified batch result onto its public
	// FileReport. It runs on the worker goroutine that finished the file
	// (via OnResult), so results stream out as they complete; distinct
	// files write distinct frs slots and the cache is concurrency-safe.
	convert := func(j int, r *batch.Result) {
		i := missOf[j]
		fr := FileReport{
			Name:     r.File.Name,
			Status:   r.Status.String(),
			Attempts: r.Attempts,
			Duration: r.Duration,
		}
		switch {
		case r.Status == batch.FrontendError:
			fr.Err = fmt.Errorf("%w:\n%s", ErrParse, frontendErrors(r.Res.Diags))
		case r.Res != nil:
			fr.Report = buildReport(r.Res, opts)
			if rec := recs[i]; rec != nil {
				fr.Report.Metrics = rec.Snapshot()
			}
		default:
			// The analysis hung (or hard-crashed) and was abandoned, so
			// there is no internal result to convert. Synthesize a
			// degraded report so per-file reports stay structurally
			// identical to single-file ones: nil Report means frontend
			// rejection, nothing else.
			reason := DegradeDeadline
			if r.Status == batch.Crashed {
				reason = DegradePanic
			}
			fr.Report = &Report{Degraded: &Degradation{
				Reason: reason,
				Procs:  nil,
			}}
		}
		if opts.Cache != nil && fr.Report != nil && fr.Report.Degraded == nil {
			cachePut(opts.Cache, keys[i], fr.Report)
		}
		frs[i] = fr
		if bopts.OnFile != nil {
			bopts.OnFile(i, fr)
		}
	}
	_, sum := batch.Run(bfiles, batch.Options{
		Workers:     bopts.Workers,
		FileTimeout: bopts.FileTimeout,
		Retries:     bopts.Retries,
		Analysis:    in,
		Analyze:     bopts.analyze,
		Ctx:         bopts.Context,
		Obs:         rec,
		PerFileObs: func(j int, f batch.File) *obs.Recorder {
			r := obs.New(shared...)
			if opts.Cache != nil {
				r.Add(obs.CtrCacheMisses, 1)
			}
			recs[missOf[j]] = r
			return r
		},
		OnResult: func(r batch.Result) { convert(r.Index, &r) },
	})
	// Fold the cache hits into the driver's summary accounting.
	for _, rep := range hits {
		if rep == nil {
			continue
		}
		sum.Files++
		sum.OK++
		for _, w := range rep.Warnings {
			sum.Warnings++
			if w.Conservative {
				sum.Conservative++
			}
		}
	}

	out := &BatchReport{Files: frs, Summary: sum}
	for i := range frs {
		if frs[i].Report != nil {
			out.Metrics.Merge(frs[i].Report.Metrics)
		}
	}
	out.Metrics.Merge(rec.Snapshot())
	return out
}

// CCFGText renders the Concurrent Control Flow Graph of one procedure as
// an indented listing (Figure 2 / Figure 7 regeneration).
func CCFGText(filename, src, proc string) (string, error) {
	return renderCCFG(filename, src, proc, false)
}

// CCFGDot renders the CCFG in Graphviz dot syntax.
func CCFGDot(filename, src, proc string) (string, error) {
	return renderCCFG(filename, src, proc, true)
}

func renderCCFG(filename, src, proc string, dot bool) (string, error) {
	in := analysis.DefaultOptions()
	in.KeepGraphs = true
	res := analysis.AnalyzeSource(filename, src, in)
	if res.Diags.HasErrors() {
		return "", fmt.Errorf("%w:\n%s", ErrParse, frontendErrors(res.Diags))
	}
	for _, pr := range res.Procs {
		if proc == "" || pr.Proc.Name.Name == proc {
			if dot {
				return pr.Graph.DOT(), nil
			}
			return pr.Graph.Text(), nil
		}
	}
	return "", fmt.Errorf("uafcheck: no analyzed procedure %q (only procs containing begin are analyzed)", proc)
}

// PPSStateDOT renders the explored Parallel Program State machine of one
// procedure in Graphviz dot syntax: states, rule-labeled transitions,
// sinks and unsafe residues.
func PPSStateDOT(filename, src, proc string) (string, error) {
	in := analysis.DefaultOptions()
	in.KeepGraphs = true
	in.PPS.Trace = true
	res := analysis.AnalyzeSource(filename, src, in)
	if res.Diags.HasErrors() {
		return "", fmt.Errorf("%w:\n%s", ErrParse, frontendErrors(res.Diags))
	}
	for _, pr := range res.Procs {
		if proc == "" || pr.Proc.Name.Name == proc {
			return pps.FormatTraceDOT(pr.PPS), nil
		}
	}
	return "", fmt.Errorf("uafcheck: no analyzed procedure %q", proc)
}

// PPSTrace renders the Parallel Program State table of one procedure
// (Figure 3 / Figure 7 regeneration).
func PPSTrace(filename, src, proc string) (string, error) {
	in := analysis.DefaultOptions()
	in.KeepGraphs = true
	in.PPS.Trace = true
	res := analysis.AnalyzeSource(filename, src, in)
	if res.Diags.HasErrors() {
		return "", fmt.Errorf("%w:\n%s", ErrParse, frontendErrors(res.Diags))
	}
	for _, pr := range res.Procs {
		if proc == "" || pr.Proc.Name.Name == proc {
			return pps.FormatTrace(pr.PPS.Trace), nil
		}
	}
	return "", fmt.Errorf("uafcheck: no analyzed procedure %q", proc)
}

// ---------------------------------------------------------------- oracle

// DynamicReport is the dynamic-oracle outcome.
type DynamicReport struct {
	// Runs is the number of schedules executed.
	Runs int
	// UAFSites lists observed use-after-free sites as "var:line".
	UAFSites []string
	// RaceSites lists observed data-race site pairs as
	// "var:line1/var:line2" (vector-clock detector).
	RaceSites []string
	// Deadlocks counts schedules that deadlocked.
	Deadlocks int
	// Exhausted is true when the full schedule space was covered.
	Exhausted bool
	// Metrics is the oracle's telemetry snapshot (oracle span, schedules
	// run, scheduler steps, deadlocks, distinct UAF sites).
	Metrics Metrics
}

// ObservedUAF reports whether the site (variable name + access line) was
// dynamically confirmed.
func (d *DynamicReport) ObservedUAF(varName string, line int) bool {
	key := fmt.Sprintf("%s:%d", varName, line)
	for _, s := range d.UAFSites {
		if s == key {
			return true
		}
	}
	return false
}

// ExploreSchedules runs the program under many schedules. With
// exhaustive=true it enumerates the schedule space depth-first up to runs
// executions; otherwise it samples runs seeded random schedules.
func ExploreSchedules(filename, src, entry string, runs int, seed int64, exhaustive bool) (*DynamicReport, error) {
	diags := &source.Diagnostics{}
	mod := parser.ParseSource(filename, src, diags)
	if diags.HasErrors() {
		return nil, fmt.Errorf("%w:\n%s", ErrParse, frontendErrors(diags))
	}
	info := sym.Resolve(mod, diags)
	if diags.HasErrors() {
		return nil, fmt.Errorf("%w:\n%s", ErrParse, frontendErrors(diags))
	}
	rec := obs.New()
	endOracle := rec.Span(obs.PhaseOracle)
	var er *runtime.ExploreResult
	if exhaustive {
		er = runtime.ExploreExhaustive(mod, info, entry, runs)
	} else {
		er = runtime.ExploreRandom(mod, info, entry, runs, seed)
	}
	endOracle()
	rep := &DynamicReport{Runs: er.Runs, Deadlocks: er.Deadlocks, Exhausted: exhaustive && !er.Truncated}
	for k := range er.UAF {
		rep.UAFSites = append(rep.UAFSites, k)
	}
	for k := range er.Races {
		rep.RaceSites = append(rep.RaceSites, k)
	}
	rep.Metrics = oracleMetrics(rec, er)
	return rep, nil
}

// oracleMetrics records the oracle counters and snapshots the recorder.
func oracleMetrics(rec *obs.Recorder, er *runtime.ExploreResult) Metrics {
	rec.Add(obs.CtrOracleSchedules, int64(er.Runs))
	rec.Add(obs.CtrOracleSteps, int64(er.TotalSteps))
	rec.Add(obs.CtrOracleDeadlocks, int64(er.Deadlocks))
	rec.Add(obs.CtrOracleUAFSites, int64(len(er.UAF)))
	return rec.Snapshot()
}

// ExploreSchedulesBounded enumerates schedules with at most `bound`
// preemptions each (iterative context bounding): exponentially fewer
// schedules than full exhaustion while retaining almost all bug-finding
// power — most use-after-free schedules need only one or two
// preemptions.
func ExploreSchedulesBounded(filename, src, entry string, maxRuns, bound int) (*DynamicReport, error) {
	diags := &source.Diagnostics{}
	mod := parser.ParseSource(filename, src, diags)
	if diags.HasErrors() {
		return nil, fmt.Errorf("%w:\n%s", ErrParse, frontendErrors(diags))
	}
	info := sym.Resolve(mod, diags)
	if diags.HasErrors() {
		return nil, fmt.Errorf("%w:\n%s", ErrParse, frontendErrors(diags))
	}
	rec := obs.New()
	endOracle := rec.Span(obs.PhaseOracle)
	er := runtime.ExploreBounded(mod, info, entry, maxRuns, bound)
	endOracle()
	rep := &DynamicReport{Runs: er.Runs, Deadlocks: er.Deadlocks, Exhausted: !er.Truncated}
	for k := range er.UAF {
		rep.UAFSites = append(rep.UAFSites, k)
	}
	for k := range er.Races {
		rep.RaceSites = append(rep.RaceSites, k)
	}
	rep.Metrics = oracleMetrics(rec, er)
	return rep, nil
}

// RunProgram executes the program once under a seeded random schedule and
// returns its writeln output (examples and demos).
func RunProgram(filename, src, entry string, seed int64) ([]string, error) {
	diags := &source.Diagnostics{}
	mod := parser.ParseSource(filename, src, diags)
	if diags.HasErrors() {
		return nil, fmt.Errorf("%w:\n%s", ErrParse, frontendErrors(diags))
	}
	info := sym.Resolve(mod, diags)
	if diags.HasErrors() {
		return nil, fmt.Errorf("%w:\n%s", ErrParse, frontendErrors(diags))
	}
	r := runtime.Run(mod, info, runtime.Config{
		Entry:         entry,
		CaptureOutput: true,
		Policy:        runtime.NewRandomPolicy(seed),
	})
	return r.Output, nil
}

// ExecuteTraced runs the program once under a seeded random schedule and
// returns its writeln output plus the execution event trace (task spawns,
// sync-variable transitions, blocking, scope deaths, use-after-free
// hits) — the dynamic counterpart of the PPS table.
func ExecuteTraced(filename, src, entry string, seed int64) (output, trace []string, err error) {
	diags := &source.Diagnostics{}
	mod := parser.ParseSource(filename, src, diags)
	if diags.HasErrors() {
		return nil, nil, fmt.Errorf("%w:\n%s", ErrParse, frontendErrors(diags))
	}
	info := sym.Resolve(mod, diags)
	if diags.HasErrors() {
		return nil, nil, fmt.Errorf("%w:\n%s", ErrParse, frontendErrors(diags))
	}
	r := runtime.Run(mod, info, runtime.Config{
		Entry:         entry,
		CaptureOutput: true,
		Trace:         true,
		Policy:        runtime.NewRandomPolicy(seed),
	})
	return r.Output, r.Trace, nil
}

// ---------------------------------------------------------------- corpus

// CorpusParams parameterize the synthetic test-suite generator; see
// internal/corpus for the population model.
type CorpusParams = corpus.Params

// CorpusCase is one generated test program.
type CorpusCase = corpus.TestCase

// DefaultCorpusParams reproduce the paper's Table I population.
func DefaultCorpusParams(seed int64) CorpusParams { return corpus.DefaultParams(seed) }

// GenerateCorpus builds the synthetic suite.
func GenerateCorpus(p CorpusParams) []CorpusCase { return corpus.Generate(p) }

// TableI mirrors the paper's Table I.
type TableI = eval.TableI

// RunTableI analyzes the corpus and assembles Table I. The returned
// string is the per-pattern breakdown.
//
// Deprecated: use RunTableIContext.
func RunTableI(cases []CorpusCase, opts Options) (TableI, string) {
	table, det := eval.RunTableI(cases, opts.internal())
	return table, det.FormatPatternBreakdown()
}

// RunTableIContext analyzes the corpus under ctx and assembles Table I —
// the context-first form of RunTableI, taking the same functional
// options as AnalyzeContext. The returned string is the per-pattern
// breakdown.
func RunTableIContext(ctx context.Context, cases []CorpusCase, options ...Option) (TableI, string) {
	cfg := apiConfig{opts: DefaultOptions()}
	for _, o := range options {
		o(&cfg)
	}
	in := cfg.opts.internal()
	in.Ctx = ctx
	table, det := eval.RunTableI(cases, in)
	return table, det.FormatPatternBreakdown()
}

// CorpusTelemetry is the aggregate evaluation telemetry: per-pattern
// analysis timing and PPS state-count aggregates with power-of-two
// histograms. It serializes to the BENCH_corpus.json schema of
// cmd/uafcorpus.
type CorpusTelemetry = eval.Telemetry

// RunTableIWithTelemetry runs the evaluation like RunTableI and also
// returns the aggregate telemetry report.
func RunTableIWithTelemetry(cases []CorpusCase, opts Options) (TableI, *CorpusTelemetry, string) {
	table, det := eval.RunTableI(cases, opts.internal())
	return table, det.Telemetry(), det.FormatPatternBreakdown()
}

// BaselineComparison runs the §VI baselines over the corpus's begin-task
// cases and formats the comparison.
func BaselineComparison(cases []CorpusCase, opts Options) string {
	rep := eval.RunBaselines(cases, opts.internal())
	return rep.Format()
}

// ---------------------------------------------------------------- repair
//
// The v1 repair helpers (RepairSource, RepairSourceContext and their
// RepairResult/RepairStep shapes) were removed in 0.7.0 after a full
// deprecation cycle; use Repair (repair_api.go), which returns verified
// unified-diff patches. See docs/SERVER.md for the removal policy.
