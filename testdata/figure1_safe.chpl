// Figure 1 variant discussed in §I: lines 14 and 15 swapped, creating the
// wait chain TASK B -> TASK A -> parent. All accesses of x become safe.
proc outerVarUseSafe() {
  var x: int = 10;
  var doneA$: sync bool;
  begin with (ref x) { // TASK A
    writeln(x);
    x += 1;
    var doneB$: sync bool;
    begin with (ref x) { // TASK B
      writeln(x);
      doneB$ = true;
    }
    writeln(x);
    doneB$;        // swapped: wait for TASK B first,
    doneA$ = true; // then release the parent
  }
  doneA$;
  begin with (in x) { // TASK C
    writeln(x);
  }
}
