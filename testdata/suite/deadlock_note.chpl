// expect: note potential deadlock
// expect: warning x TASK A never-synchronized
// Nobody ever fills go$: the task blocks forever and its access can
// never be ordered before the parent's exit.
proc stuckTask() {
  var x: int = 1;
  var go$: sync bool;
  begin with (ref x) {
    go$;
    x = 2;
  }
  writeln("parent leaves");
}
