// expect: clean
// helper() is a TOP-LEVEL procedure: the partial inter-procedural
// analysis treats the call as opaque (§III), and helper itself contains
// no begin so it is never analyzed.
proc helper(v: int): int {
  return v * 2;
}
proc caller() {
  var x: int = 3;
  var done$: sync bool;
  begin with (ref x) {
    x = helper(x);
    done$ = true;
  }
  done$;
}
