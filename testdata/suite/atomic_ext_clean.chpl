// options: model-atomics
// expect: clean
// The same handshake as atomic_fp.chpl, analyzed under the §VII
// extension: the fill/waitFor pair is now modelled and proven safe.
proc atomicGuardExt() {
  var buf: int = 0;
  var flag: atomic int;
  begin with (ref buf) {
    buf = 9;
    flag.write(1);
  }
  flag.waitFor(1);
}
