// expect: warning acc TASK A never-synchronized
// Compound assignments and inc/dec are reads AND writes of the outer
// location; the site is reported once per line.
proc compound() {
  var acc: int = 1;
  begin with (ref acc) {
    acc += 2;
  }
}
