// expect: warning base TASK A never-synchronized
// The nested procedure is inlined even when called in expression
// position; its hidden read of 'base' surfaces in the task.
proc exprCall() {
  var base: int = 10;
  proc scaled(k: int): int {
    return base * k;
  }
  begin {
    writeln(scaled(3));
  }
}
