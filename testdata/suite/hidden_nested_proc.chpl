// expect: warning counter TASK A never-synchronized
// The nested procedure's access is exposed by inlining (§III-A) even
// though 'counter' never appears in a with-clause.
proc hidden() {
  var counter: int = 0;
  proc bump() {
    counter = counter + 1;
  }
  begin {
    bump();
  }
}
