// expect: clean
// A variable declared inside the sync block outlives the fence: tasks in
// the block may use it freely.
proc fenceLocal() {
  sync {
    var acc: int = 0;
    begin with (ref acc) {
      acc = acc + 1;
    }
    begin with (ref acc) {
      acc = acc + 2;
    }
  }
}
