// expect: clean
// One token per task, both consumed before scope end.
proc twoTokens() {
  var x: int = 1;
  var y: int = 2;
  var dx$: sync bool;
  var dy$: sync bool;
  begin with (ref x) {
    x = 10;
    dx$ = true;
  }
  begin with (ref y) {
    y = 20;
    dy$ = true;
  }
  dx$;
  dy$;
  writeln(x + y);
}
