// options: count-atomics
// expect: clean
// A counting protocol, provable only under the counting refinement:
// waitFor(2) fires after BOTH fetchAdds.
proc counterExt() {
  var a: int = 1;
  var b: int = 1;
  var c: atomic int;
  begin with (ref a) {
    a = 2;
    c.fetchAdd(1);
  }
  begin with (ref b) {
    b = 2;
    c.fetchAdd(1);
  }
  c.waitFor(2);
}
