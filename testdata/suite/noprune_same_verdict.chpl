// options: no-prune
// expect: clean
// Pruning disabled: the sync-block-protected task is explored instead of
// pruned, and the verdict must not change (§III-A correctness claim).
proc unpruned() {
  var x: int = 1;
  sync {
    begin with (ref x) {
      x = 2;
    }
  }
  writeln(x);
}
