// expect: warning buf TASK A never-synchronized
// Dynamically safe (the parent spins on waitFor) but flagged: atomics
// are outside the default analysis (§IV-A) — the canonical Table I
// false positive.
proc atomicGuard() {
  var buf: int = 0;
  var flag: atomic int;
  begin with (ref buf) {
    buf = 9;
    flag.write(1);
  }
  flag.waitFor(1);
}
