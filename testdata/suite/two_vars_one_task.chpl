// expect: warning a TASK A never-synchronized
// expect: warning b TASK A never-synchronized
// Both captured variables are endangered by the same unsynchronized task.
proc twoVars() {
  var a: int = 1;
  var b: int = 2;
  begin with (ref a, ref b) {
    a = a + b;
    b = 0;
  }
}
