// expect: clean
// A single variable broadcast: both workers block on readFF, the parent
// fills once, and each worker signals its own completion token.
proc broadcast() {
  var x: int = 1;
  var y: int = 1;
  var go$: single bool;
  var dx$: sync bool;
  var dy$: sync bool;
  begin with (ref x) {
    go$.readFF();
    x = x + 1;
    dx$ = true;
  }
  begin with (ref y) {
    go$.readFF();
    y = y + 1;
    dy$ = true;
  }
  go$.writeEF(true);
  dx$;
  dy$;
}
