// expect: warning buf TASK A never-synchronized
// One call site escapes the sync discipline: the ref-param accesses are
// no longer structurally safe.
proc fill2(ref buf: int) {
  begin {
    buf = 42;
  }
}
proc driver2() {
  var data: int = 0;
  sync {
    fill2(data);
  }
  fill2(data);
  writeln(data);
}
