// expect: clean
// An explicitly initialized sync variable starts full (§II): the task's
// readFE succeeds without a writer.
proc gateKeeper() {
  var x: int = 5;
  var gate$: sync bool = true;
  var done$: sync bool;
  begin with (ref x) {
    gate$;
    x = 6;
    done$ = true;
  }
  done$;
}
