// expect: note subsumes the loop
// expect: warning x TASK A never-synchronized
// A loop containing a begin is out of scope (§IV-A): the loop collapses
// and the analysis stays conservative about the surviving access.
proc loopTask() {
  var x: int = 1;
  var done$: sync bool;
  begin with (ref x) {
    while (x < 3) {
      x = x + 1;
      done$ = true;
    }
    writeln(x);
  }
  done$;
}
