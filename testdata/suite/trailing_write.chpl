// expect: warning x TASK A never-synchronized
// The write after the task's last sync event cannot be ordered before
// the parent's exit.
proc trailing() {
  var x: int = 1;
  var done$: sync bool;
  begin with (ref x) {
    x = 2;
    done$ = true;
    x = 3;
  }
  done$;
}
