// expect: clean
// The for-loop induction variable is task-local; iterating inside the
// task touches no outer state.
proc loopLocal() {
  var total: int = 0;
  var done$: sync bool;
  begin with (ref total) {
    for i in 1..4 {
      total += i;
    }
    done$ = true;
  }
  done$;
  writeln(total);
}
