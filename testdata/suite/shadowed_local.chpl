// expect: clean
// The task declares its own x: the inner accesses bind to the task-local
// variable, not the outer one.
proc shadow() {
  var x: int = 1;
  begin {
    var x: int = 99;
    x = x + 1;
    writeln(x);
  }
}
