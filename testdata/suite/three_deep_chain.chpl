// expect: clean
// Three levels of nesting with a complete wait chain C -> B -> A -> parent.
proc deepChain() {
  var x: int = 1;
  var a$: sync bool;
  begin with (ref x) {
    var b$: sync bool;
    begin with (ref x) {
      var c$: sync bool;
      begin with (ref x) {
        x = x + 1;
        c$ = true;
      }
      c$;
      b$ = true;
    }
    b$;
    a$ = true;
  }
  a$;
  writeln(x);
}
