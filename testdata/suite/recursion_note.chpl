// expect: warning depth TASK A never-synchronized
// expect: note recursive nested procedure
// Recursive nested procedures stop inlining with a note (§III-A); the
// one inlined copy still reveals the dangerous access.
proc recurse() {
  var depth: int = 0;
  proc dive() {
    depth = depth + 1;
    dive();
  }
  begin {
    dive();
  }
}
