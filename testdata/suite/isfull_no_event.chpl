// expect: warning x TASK A after-frontier
// isFull is not a synchronization event: polling it establishes no
// ordering, so the access stays dangerous.
proc polling() {
  var x: int = 1;
  var done$: sync bool;
  begin with (ref x) {
    writeln(x);
    done$ = true;
  }
  writeln(done$.isFull());
}
