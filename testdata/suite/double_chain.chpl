// expect: clean
// Figure 1's swapped-wait variant: the full wait chain B -> A -> parent.
proc doubleChain() {
  var x: int = 1;
  var a$: sync bool;
  begin with (ref x) {
    var b$: sync bool;
    begin with (ref x) {
      x = x * 2;
      b$ = true;
    }
    b$;
    a$ = true;
  }
  a$;
  writeln(x);
}
