// expect: clean
// entry: driver
// The synced-scope list (§III-A): every call site of the worker is
// enclosed in a sync block, so the by-ref parameter is safe.
proc fill(ref buf: int) {
  begin {
    buf = 42;
  }
}
proc driver() {
  var data: int = 0;
  sync {
    fill(data);
  }
  writeln(data);
}
