// expect: warning tmp TASK B never-synchronized
// The variable belongs to TASK A; the nested task can outlive it even
// though TASK A synchronizes with the parent.
proc innerLeak() {
  var done$: sync bool;
  begin {
    var tmp: int = 7;
    begin with (ref tmp) {
      writeln(tmp);
    }
    done$ = true;
  }
  done$;
}
