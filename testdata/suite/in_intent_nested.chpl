// expect: warning x TASK B never-synchronized
// The in-intent copy belongs to TASK A; the nested task captures the
// COPY by reference and can outlive TASK A.
proc copyLeak() {
  var x: int = 1;
  begin with (in x) {
    begin with (ref x) {
      writeln(x);
    }
  }
}
