// expect: clean
// writeXF is an unconditional fill; the wait chain still holds.
proc xfWrite() {
  var x: int = 1;
  var done$: sync bool;
  begin with (ref x) {
    x = 2;
    done$.writeXF(true);
  }
  done$;
}
