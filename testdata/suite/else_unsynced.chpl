// expect: warning x TASK A after-frontier
// The parent only waits on the if path; the else path can exit first.
config const cond = true;
proc branchWait() {
  var x: int = 1;
  var done$: sync bool;
  begin with (ref x) {
    x = 2;
    done$ = true;
  }
  if (cond) {
    done$;
  } else {
    writeln("skipped the wait");
  }
}
