// Figure 6 of the paper: a branch inside a begin task. If the flag is
// true, TASK B is created and its access of x may be dangerous: done$ may
// be consumed by the parent before TASK B writes it.
config const flag = true;
proc multipleUse() {
  var x: int = 10;
  var done$: sync bool;
  // Task A
  begin with (ref x) {
    if (flag) {
      // Task B
      begin with (ref x) {
        writeln(x);
        done$ = true;
        done$;
      }
    }
    done$ = true;
  }
  done$;
}
