// Figure 1 of the paper: three tasks with outer-variable accesses.
// The access of x inside TASK B (writeln(x) below) is potentially
// dangerous: no wait chain connects TASK B back to the parent.
proc outerVarUse() {
  var x: int = 10;
  var doneA$: sync bool;
  begin with (ref x) { // TASK A
    // safe access
    writeln(x);
    x += 1;
    var doneB$: sync bool;
    begin with (ref x) { // TASK B
      // potentially dangerous access
      writeln(x);
      doneB$ = true;
    }
    writeln(x); // safe: parent waits for line "doneA$ = true"
    doneA$ = true;
    doneB$;
  }
  doneA$;
  begin with (in x) { // TASK C
    writeln(x);
  }
}
