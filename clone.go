package uafcheck

import "uafcheck/internal/obs"

// Clone returns a deep copy of the report: mutating the copy (or the
// original) never affects the other. The analysis cache round-trips
// every stored report through Clone, so batch and single-file callers
// can freely edit what they get back.
func (r *Report) Clone() *Report {
	if r == nil {
		return nil
	}
	// Positional composite literal on purpose: adding a field to Report
	// without extending this clone becomes a compile error instead of a
	// silently-shared (or silently-dropped) field.
	cp := Report{r.Warnings, r.Notes, r.Truncated, r.Stats, r.PPSTraces, r.Metrics, r.Degraded}

	cp.Warnings = append([]Warning(nil), r.Warnings...)
	for i := range cp.Warnings {
		if p := cp.Warnings[i].Prov; p != nil {
			pc := *p
			pc.Chain = append([]string(nil), p.Chain...)
			cp.Warnings[i].Prov = &pc
		}
	}
	cp.Notes = append([]string(nil), r.Notes...)
	cp.Stats = append([]ProcStats(nil), r.Stats...)
	if r.PPSTraces != nil {
		cp.PPSTraces = make(map[string]string, len(r.PPSTraces))
		for k, v := range r.PPSTraces {
			cp.PPSTraces[k] = v
		}
	}
	cp.Metrics.Spans = append([]obs.Span(nil), r.Metrics.Spans...)
	if r.Metrics.Counters != nil {
		cp.Metrics.Counters = make(map[string]int64, len(r.Metrics.Counters))
		for k, v := range r.Metrics.Counters {
			cp.Metrics.Counters[k] = v
		}
	}
	if r.Metrics.Gauges != nil {
		cp.Metrics.Gauges = make(map[string]int64, len(r.Metrics.Gauges))
		for k, v := range r.Metrics.Gauges {
			cp.Metrics.Gauges[k] = v
		}
	}
	if r.Metrics.Hists != nil {
		cp.Metrics.Hists = make(map[string]obs.Histogram, len(r.Metrics.Hists))
		for k, v := range r.Metrics.Hists {
			cp.Metrics.Hists[k] = v
		}
	}
	if r.Metrics.Trace != nil {
		cp.Metrics.Trace = append([]obs.TraceSpan(nil), r.Metrics.Trace...)
		for i := range cp.Metrics.Trace {
			if a := cp.Metrics.Trace[i].Attrs; a != nil {
				ac := make(map[string]string, len(a))
				for k, v := range a {
					ac[k] = v
				}
				cp.Metrics.Trace[i].Attrs = ac
			}
		}
	}
	if r.Degraded != nil {
		d := *r.Degraded
		d.Procs = append([]string(nil), r.Degraded.Procs...)
		d.Crashes = append([]Crash(nil), r.Degraded.Crashes...)
		cp.Degraded = &d
	}
	return &cp
}
