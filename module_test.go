package uafcheck_test

// Property tests for the module-mode guarantees:
//
//   - summary-based lowering is byte-identical (canonical wire encoding)
//     to the legacy per-call-site inliner, over the calibrated Table I
//     corpus and over random multi-file modules with cross-file calls;
//   - Analyzer.AnalyzeModuleDelta is byte-identical to a one-shot
//     AnalyzeModuleContext run, cold and across random file edits;
//   - memo invalidation is graph-scoped: editing a callee re-keys the
//     edited file's units plus exactly the transitive callers whose
//     composed summaries changed, observed through unit hit/miss stats.
//
// `make test-race` runs all of these under the race detector, which
// also certifies the concurrent module-delta path below.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"uafcheck"
	"uafcheck/internal/corpus"
	"uafcheck/internal/progen"
	"uafcheck/internal/wire"
)

func modFiles(fs []progen.File) []uafcheck.ModuleFile {
	out := make([]uafcheck.ModuleFile, len(fs))
	for i, f := range fs {
		out[i] = uafcheck.ModuleFile{Name: f.Name, Src: f.Src}
	}
	return out
}

// moduleWire canonically encodes each file of a module report the way
// the /v1/analyze-batch module stream does.
func moduleWire(t *testing.T, mrep *uafcheck.ModuleReport) []string {
	t.Helper()
	out := make([]string, len(mrep.Files))
	for i, fr := range mrep.Files {
		out[i] = wireBytes(t, fr.Name, fr.Report, fr.Err)
	}
	return out
}

func requireModulesEqual(t *testing.T, got, want *uafcheck.ModuleReport, label string) {
	t.Helper()
	g, w := moduleWire(t, got), moduleWire(t, want)
	if len(g) != len(w) {
		t.Fatalf("%s: file count mismatch: %d vs %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: wire bytes differ for file %d\n  got: %s\n want: %s",
				label, i, g[i], w[i])
		}
	}
}

// TestSummaryInlineByteIdentityCorpus sweeps a stride of the calibrated
// corpus (which includes every nested-procedure idiom) through both
// lowering modes and demands identical canonical bytes.
func TestSummaryInlineByteIdentityCorpus(t *testing.T) {
	ctx := context.Background()
	cases := corpus.Generate(corpus.DefaultParams(7))
	stride := 17
	if testing.Short() {
		stride = 97
	}
	for i := 0; i < len(cases); i += stride {
		tc := cases[i]
		name := tc.Name + ".chpl"
		sum, serr := uafcheck.AnalyzeContext(ctx, name, tc.Source)
		inl, ierr := uafcheck.AnalyzeContext(ctx, name, tc.Source,
			uafcheck.WithInlineLowering(true))
		if (serr == nil) != (ierr == nil) {
			t.Fatalf("%s: error mismatch: summary=%v inline=%v", tc.Name, serr, ierr)
		}
		if got, want := wireBytes(t, name, sum, serr), wireBytes(t, name, inl, ierr); got != want {
			t.Fatalf("%s (%s): summary and inline modes differ\nsummary: %s\n inline: %s\nsource:\n%s",
				tc.Name, tc.Pattern, got, want, tc.Source)
		}
	}
}

// TestModuleSummaryInlineByteIdentity is the cross-file half of the
// property: random modules with calls in plain, sync-enclosed, and
// task-enclosed positions analyze identically under both lowerings.
func TestModuleSummaryInlineByteIdentity(t *testing.T) {
	ctx := context.Background()
	trials := 10
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(4000 + trial)))
			files := modFiles(progen.GenerateModule(rng.Int63(), progen.ModuleOptions{
				Files:   2 + rng.Intn(3),
				Procs:   1 + rng.Intn(3),
				Atomics: trial%2 == 0,
			}))
			sum, serr := uafcheck.AnalyzeModuleContext(ctx, files)
			inl, ierr := uafcheck.AnalyzeModuleContext(ctx, files,
				uafcheck.WithInlineLowering(true))
			if serr != nil || ierr != nil {
				t.Fatalf("unexpected errors: summary=%v inline=%v", serr, ierr)
			}
			requireModulesEqual(t, sum, inl, "summary vs inline")
		})
	}
}

// TestAnalyzeModuleDeltaByteIdentity replaces random files of a module
// with regenerated bodies (procedure names are deterministic, so the
// link stays valid) and checks every warm snapshot matches a
// from-scratch run byte for byte.
func TestAnalyzeModuleDeltaByteIdentity(t *testing.T) {
	ctx := context.Background()
	trials := 8
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(5000 + trial)))
			mopts := progen.ModuleOptions{Files: 3, Procs: 2, Atomics: trial%3 == 0}
			files := modFiles(progen.GenerateModule(rng.Int63(), mopts))
			an := uafcheck.NewAnalyzer()
			check := func(label string) {
				t.Helper()
				drep, derr := an.AnalyzeModuleDelta(ctx, files)
				frep, ferr := uafcheck.AnalyzeModuleContext(ctx, files)
				if derr != nil || ferr != nil {
					t.Fatalf("%s: delta err=%v fresh err=%v", label, derr, ferr)
				}
				requireModulesEqual(t, drep, frep, label)
			}
			check("cold")
			for edit := 0; edit < 4; edit++ {
				alt := progen.GenerateModule(rng.Int63(), mopts)
				i := rng.Intn(len(files))
				files[i].Src = alt[i].Src
				check(fmt.Sprintf("edit%d(%s)", edit, files[i].Name))
			}
			if st := an.Stats(); st.UnitHits == 0 {
				t.Errorf("expected unit hits across single-file edits, got %+v", st)
			}
		})
	}
}

// TestModuleDeltaGraphScopedInvalidation pins the invalidation
// granularity on a three-hop chain main -> mid -> leaf plus an
// unrelated procedure:
//
//   - an effect-preserving edit of leaf recomputes only leaf;
//   - an effect-changing edit of leaf recomputes leaf, mid, and main
//     (the summary change propagates along call-graph edges) but never
//     the unrelated file.
func TestModuleDeltaGraphScopedInvalidation(t *testing.T) {
	ctx := context.Background()
	files := []uafcheck.ModuleFile{
		{Name: "leaf.chpl", Src: "proc leaf(ref v: int) {\n  begin with (ref v) {\n    v = v + 1;\n  }\n}\n"},
		{Name: "mid.chpl", Src: "proc mid(ref w: int) {\n  leaf(w);\n}\n"},
		{Name: "main.chpl", Src: "proc main() {\n  var x: int = 0;\n  mid(x);\n}\n"},
		{Name: "other.chpl", Src: "proc other() {\n  var y: int = 0;\n  begin with (ref y) {\n    y = 1;\n  }\n}\n"},
	}
	an := uafcheck.NewAnalyzer()
	run := func(label string, wantMisses, wantHits int64) {
		t.Helper()
		before := an.Stats()
		drep, err := an.AnalyzeModuleDelta(ctx, files)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		frep, err := uafcheck.AnalyzeModuleContext(ctx, files)
		if err != nil {
			t.Fatalf("%s: fresh: %v", label, err)
		}
		requireModulesEqual(t, drep, frep, label)
		after := an.Stats()
		if m := after.UnitMisses - before.UnitMisses; m != wantMisses {
			t.Errorf("%s: unit misses = %d, want %d", label, m, wantMisses)
		}
		if h := after.UnitHits - before.UnitHits; h != wantHits {
			t.Errorf("%s: unit hits = %d, want %d", label, h, wantHits)
		}
	}

	// Four analysis roots: leaf and other have their own begins; mid and
	// main inherit an escaping task from leaf through the summaries.
	run("cold", 4, 0)
	run("unchanged", 0, 4)

	// Effect-preserving edit: leaf still escape-writes v, so its
	// boundary summary — and every caller's memo key — is unchanged.
	files[0].Src = "proc leaf(ref v: int) {\n  begin with (ref v) {\n    v = v + 2;\n  }\n}\n"
	run("effect-preserving callee edit", 1, 3)

	// Effect-changing edit: the escaping write becomes an escaping
	// read. leaf's summary changes, which changes mid's composed
	// summary, which changes main's callee view — all three recompute;
	// other.chpl stays hot.
	files[0].Src = "proc leaf(ref v: int) {\n  begin with (ref v) {\n    writeln(v);\n  }\n}\n"
	run("effect-changing callee edit", 3, 1)
}

// TestAnalyzeModuleDeltaConcurrent drives one Analyzer with alternating
// module snapshots from many goroutines — the uafserve /v1/delta module
// usage — and checks every interleaving matches the from-scratch bytes.
func TestAnalyzeModuleDeltaConcurrent(t *testing.T) {
	ctx := context.Background()
	base := progen.GenerateModule(99, progen.ModuleOptions{Files: 3, Procs: 2})
	snaps := make([][]uafcheck.ModuleFile, 4)
	want := make([][]string, len(snaps))
	for i := range snaps {
		files := modFiles(base)
		if i > 0 {
			alt := progen.GenerateModule(int64(100+i), progen.ModuleOptions{Files: 3, Procs: 2})
			files[i%len(files)].Src = alt[i%len(files)].Src
		}
		snaps[i] = files
		mrep, err := uafcheck.AnalyzeModuleContext(ctx, files)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = moduleWire(t, mrep)
	}
	an := uafcheck.NewAnalyzer()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 6; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				i := (g + k) % len(snaps)
				mrep, err := an.AnalyzeModuleDelta(ctx, snaps[i])
				if err != nil {
					errs <- err
					return
				}
				for fi, fr := range mrep.Files {
					b, err := wire.NewResult(fr.Name, fr.Report, fr.Err, false).Encode()
					if err != nil {
						errs <- err
						return
					}
					if string(b) != want[i][fi] {
						errs <- fmt.Errorf("goroutine %d snapshot %d file %d: wire bytes differ", g, i, fi)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
