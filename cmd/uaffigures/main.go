// Command uaffigures regenerates the paper's figures from the programs in
// testdata/: Figure 2 (CCFG of Figure 1), Figure 3 (its PPS table and
// warning), and Figure 7 (CCFG + PPS table of the branching example of
// Figure 6).
//
// Usage:
//
//	uaffigures [-fig N] [-dot] [-testdata dir]
//
// Without -fig, all figures are printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"uafcheck"
)

func main() {
	var (
		fig      = flag.Int("fig", 0, "figure to print: 2, 3 or 7 (0 = all)")
		dot      = flag.Bool("dot", false, "emit CCFGs as Graphviz dot instead of text")
		ppsdot   = flag.Bool("ppsdot", false, "emit the PPS state machine as Graphviz dot")
		testdata = flag.String("testdata", "testdata", "directory holding figure1.chpl / figure6.chpl")
	)
	flag.Parse()

	fig1 := read(*testdata, "figure1.chpl")
	fig6 := read(*testdata, "figure6.chpl")

	if *fig == 0 || *fig == 2 {
		section("Figure 2: CCFG for proc outerVarUse (Figure 1)")
		printCCFG("figure1.chpl", fig1, "outerVarUse", *dot)
	}
	if *fig == 0 || *fig == 3 {
		section("Figure 3: PPS exploration for proc outerVarUse")
		if *ppsdot {
			out, err := uafcheck.PPSStateDOT("figure1.chpl", fig1, "outerVarUse")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Print(out)
		} else {
			printTrace("figure1.chpl", fig1, "outerVarUse")
		}
		printWarnings("figure1.chpl", fig1)
	}
	if *fig == 0 || *fig == 7 {
		section("Figure 7: CCFG and PPS exploration for proc multipleUse (Figure 6)")
		printCCFG("figure6.chpl", fig6, "multipleUse", *dot)
		printTrace("figure6.chpl", fig6, "multipleUse")
		printWarnings("figure6.chpl", fig6)
	}
}

func read(dir, name string) string {
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		fmt.Fprintf(os.Stderr, "uaffigures: %v (run from the repository root or pass -testdata)\n", err)
		os.Exit(1)
	}
	return string(data)
}

func section(title string) {
	fmt.Println()
	fmt.Println("==== " + title)
}

func printCCFG(name, src, proc string, dot bool) {
	render := uafcheck.CCFGText
	if dot {
		render = uafcheck.CCFGDot
	}
	out, err := render(name, src, proc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(out)
}

func printTrace(name, src, proc string) {
	out, err := uafcheck.PPSTrace(name, src, proc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(out)
}

func printWarnings(name, src string) {
	rep, err := uafcheck.Analyze(name, src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, w := range rep.Warnings {
		fmt.Println(w)
	}
}
