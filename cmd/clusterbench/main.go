// Command clusterbench measures how analysis throughput scales across
// a sharded uafserve fleet. It boots real uafserve processes — a
// single-process baseline plus a coordinator in front of 1, 2 and 4
// workers — drives the same batch through every topology, and writes
// the BENCH_cluster.json artifact.
//
// Two properties are enforced, not just measured:
//
//   - Identity: every topology must emit a warning line set
//     byte-identical to the single-process baseline. Any divergence is
//     a hard failure — a cluster that answers differently from one
//     process is wrong no matter how fast it is.
//   - Scaling: the two-worker fleet must beat the one-worker fleet by
//     at least -min-speedup (default 1.6x). Disable with 0 on hosts
//     too noisy to gate on.
//
// Workers run with GOMAXPROCS=1 and -inflight 1 — each is a simulated
// one-core machine — and per-analysis latency is injected with the
// deterministic analysis.delay fault point, so the scaling signal is
// wall-clock shard parallelism, not host core count: the bench behaves
// identically on a laptop and a 64-core CI box.
//
// The batch is constructed so that both the 2-worker and the 4-worker
// rings split it exactly evenly (files are rejection-sampled into ring
// ownership cells). Ring balance itself is a property test
// (internal/cluster); this bench isolates scaling from it.
//
// Run via `make cluster-loadtest` or scripts/cluster-loadtest.sh.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"time"

	"uafcheck/internal/cluster"
	"uafcheck/internal/server"
)

// artifact is the BENCH_cluster.json schema.
type artifact struct {
	Schema string `json:"schema"`
	Host   struct {
		NumCPU     int `json:"num_cpu"`
		GOMAXPROCS int `json:"gomaxprocs"`
	} `json:"host"`
	DelayMS  int64   `json:"delay_ms"`
	Files    int     `json:"files"`
	SingleMS int64   `json:"single_ms"`
	Fleets   []fleet `json:"fleets"`
	Scaling  struct {
		TwoVsOne    float64 `json:"two_vs_one"`
		MinRequired float64 `json:"min_required"`
		Pass        bool    `json:"pass"`
	} `json:"scaling"`
}

type fleet struct {
	Workers           int     `json:"workers"`
	WallMS            int64   `json:"wall_ms"`
	SpeedupVsSingle   float64 `json:"speedup_vs_single"`
	IdenticalWarnings bool    `json:"identical_warnings"`
}

func main() {
	var (
		bin        = flag.String("bin", "", "path to the uafserve binary (required)")
		out        = flag.String("out", "BENCH_cluster.json", "artifact output path")
		perCell    = flag.Int("per-cell", 12, "files per ring-ownership cell (total = 8x this)")
		delay      = flag.Duration("delay", 40*time.Millisecond, "injected per-analysis latency (analysis.delay fault)")
		minSpeedup = flag.Float64("min-speedup", 1.6, "required 2-worker speedup over 1 worker (0 disables the gate)")
	)
	flag.Parse()
	if *bin == "" {
		fmt.Fprintln(os.Stderr, "clusterbench: -bin is required")
		os.Exit(2)
	}
	if err := run(*bin, *out, *perCell, *delay, *minSpeedup); err != nil {
		fmt.Fprintln(os.Stderr, "clusterbench:", err)
		os.Exit(1)
	}
}

// balancedFiles rejection-samples generated files into ring-ownership
// cells keyed by (2-worker owner, 4-worker owner), with per-cell
// quotas chosen so BOTH fleet sizes split the batch exactly evenly.
// Only six cells are feasible: when the 4-worker owner is worker-0 or
// worker-1, the 2-worker owner is necessarily the same member (the
// 4-ring is the 2-ring plus two members, so a point whose 4-ring
// successor is in {0,1} has that same successor in the 2-ring). The
// quotas — 2k for each diagonal cell, k for each mixed cell, 8k files
// total — give every 2-ring owner 4k files and every 4-ring owner 2k.
// Every file carries a genuine fire-and-forget use-after-free so the
// identity check compares real warning lines, and each unique proc
// name defeats the dedup layer — every file costs one injected delay.
func balancedFiles(k int) []server.BatchFile {
	ring2 := cluster.NewRing([]string{"worker-0", "worker-1"}, 0)
	ring4 := cluster.NewRing([]string{"worker-0", "worker-1", "worker-2", "worker-3"}, 0)
	quota := map[string]int{
		"worker-0/worker-0": 2 * k, "worker-1/worker-1": 2 * k,
		"worker-0/worker-2": k, "worker-0/worker-3": k,
		"worker-1/worker-2": k, "worker-1/worker-3": k,
	}
	var files []server.BatchFile
	for i := 0; len(files) < 8*k; i++ {
		name := fmt.Sprintf("bench-%d.chpl", i)
		src := fmt.Sprintf(
			"proc benchCase%d() {\n  var x: int = %d;\n  begin with (ref x) {\n    x += 1;\n  }\n}\n",
			i, i)
		key := server.RouteKey("analyze", name, src, server.RequestOptions{})
		cell := ring2.Lookup(key) + "/" + ring4.Lookup(key)
		if quota[cell] == 0 {
			continue
		}
		quota[cell]--
		files = append(files, server.BatchFile{Name: name, Src: src})
	}
	return files
}

func run(bin, out string, perCell int, delay time.Duration, minSpeedup float64) error {
	files := balancedFiles(perCell)
	fmt.Printf("clusterbench: %d files, %v injected latency each\n", len(files), delay)

	art := artifact{Schema: "uafcheck/bench-cluster/v1", DelayMS: delay.Milliseconds(), Files: len(files)}
	art.Host.NumCPU = runtime.NumCPU()
	art.Host.GOMAXPROCS = runtime.GOMAXPROCS(0)

	faults := fmt.Sprintf("analysis.delay=delay:1:0:%s", delay)

	// Single-process baseline: the identity reference and the
	// denominator for speedup_vs_single.
	single, err := startProc(bin, "-addr", "127.0.0.1:0", "-inflight", "1", "-queue", "1024", "-faults", faults)
	if err != nil {
		return err
	}
	defer single.kill()
	baseMS, baseLines, err := driveBatch(single.addr, files)
	if err != nil {
		return fmt.Errorf("single-process baseline: %w", err)
	}
	single.kill()
	art.SingleMS = baseMS
	fmt.Printf("clusterbench: single process: %d ms\n", baseMS)

	wallByFleet := map[int]int64{}
	for _, n := range []int{1, 2, 4} {
		wall, lines, err := runFleet(bin, faults, n, files)
		if err != nil {
			return fmt.Errorf("%d-worker fleet: %w", n, err)
		}
		identical := equalLines(baseLines, lines)
		art.Fleets = append(art.Fleets, fleet{
			Workers:           n,
			WallMS:            wall,
			SpeedupVsSingle:   ratio(baseMS, wall),
			IdenticalWarnings: identical,
		})
		wallByFleet[n] = wall
		fmt.Printf("clusterbench: %d worker(s): %d ms (%.2fx vs single, identical=%t)\n",
			n, wall, ratio(baseMS, wall), identical)
		if !identical {
			diffLines(baseLines, lines)
			return fmt.Errorf("%d-worker fleet emitted a different warning line set than the single process", n)
		}
	}

	art.Scaling.TwoVsOne = ratio(wallByFleet[1], wallByFleet[2])
	art.Scaling.MinRequired = minSpeedup
	art.Scaling.Pass = minSpeedup <= 0 || art.Scaling.TwoVsOne >= minSpeedup

	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("clusterbench: 2 workers vs 1: %.2fx (required >= %.2f)\n", art.Scaling.TwoVsOne, minSpeedup)
	fmt.Printf("clusterbench: wrote %s\n", out)
	if !art.Scaling.Pass {
		return fmt.Errorf("scaling gate failed: 2 workers gave %.2fx over 1, need >= %.2f",
			art.Scaling.TwoVsOne, minSpeedup)
	}
	return nil
}

// runFleet boots n workers plus a coordinator, drives the batch
// through the edge, and tears everything down.
func runFleet(bin, faults string, n int, files []server.BatchFile) (int64, []string, error) {
	var procs []*managedProc
	defer func() {
		for _, p := range procs {
			p.kill()
		}
	}()
	var specs []string
	for i := 0; i < n; i++ {
		w, err := startProc(bin, "-addr", "127.0.0.1:0", "-mode", "worker",
			"-inflight", "1", "-queue", "1024", "-faults", faults)
		if err != nil {
			return 0, nil, err
		}
		procs = append(procs, w)
		specs = append(specs, fmt.Sprintf("worker-%d=http://%s", i, w.addr))
	}
	coord, err := startProc(bin, "-addr", "127.0.0.1:0", "-mode", "coordinator",
		"-workers", strings.Join(specs, ","), "-probe-interval", "500ms")
	if err != nil {
		return 0, nil, err
	}
	procs = append(procs, coord)
	return driveBatchNamed(coord.addr, files)
}

func driveBatch(addr string, files []server.BatchFile) (int64, []string, error) {
	return driveBatchNamed(addr, files)
}

// driveBatchNamed posts the batch and returns wall-clock milliseconds
// plus the sorted NDJSON line set (lines stream in completion order,
// so the set, not the sequence, is the identity unit).
func driveBatchNamed(addr string, files []server.BatchFile) (int64, []string, error) {
	body, err := json.Marshal(server.BatchRequest{Files: files})
	if err != nil {
		return 0, nil, err
	}
	hc := &http.Client{Timeout: 10 * time.Minute}
	start := time.Now()
	resp, err := hc.Post("http://"+addr+"/v1/analyze-batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	wall := time.Since(start).Milliseconds()
	if err != nil {
		return 0, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, nil, fmt.Errorf("batch answered %s: %s", resp.Status, bytes.TrimSpace(raw))
	}
	var lines []string
	for _, l := range bytes.Split(raw, []byte("\n")) {
		if len(bytes.TrimSpace(l)) == 0 {
			continue
		}
		var meta struct {
			Status string `json:"status"`
			Name   string `json:"name"`
		}
		if err := json.Unmarshal(l, &meta); err != nil {
			return 0, nil, fmt.Errorf("corrupt NDJSON line: %q", l)
		}
		if meta.Status != "ok" {
			return 0, nil, fmt.Errorf("file %s finished %q: %s", meta.Name, meta.Status, l)
		}
		lines = append(lines, string(l))
	}
	if len(lines) != len(files) {
		return 0, nil, fmt.Errorf("batch returned %d lines for %d files", len(lines), len(files))
	}
	sort.Strings(lines)
	return wall, lines, nil
}

func equalLines(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func diffLines(want, got []string) {
	seen := make(map[string]bool, len(want))
	for _, l := range want {
		seen[l] = true
	}
	for _, l := range got {
		if !seen[l] {
			fmt.Fprintf(os.Stderr, "clusterbench: line only in cluster output: %s\n", l)
		}
	}
	back := make(map[string]bool, len(got))
	for _, l := range got {
		back[l] = true
	}
	for _, l := range want {
		if !back[l] {
			fmt.Fprintf(os.Stderr, "clusterbench: line only in single output: %s\n", l)
		}
	}
}

func ratio(num, den int64) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// managedProc is one spawned uafserve with its announced address.
type managedProc struct {
	cmd  *exec.Cmd
	addr string
	log  *bytes.Buffer
}

// startProc launches uafserve pinned to one OS thread (GOMAXPROCS=1 —
// every worker simulates a one-core machine) and waits for its
// "listening on" announcement to learn the ephemeral port.
func startProc(bin string, args ...string) (*managedProc, error) {
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), "GOMAXPROCS=1")
	var logBuf bytes.Buffer
	cmd.Stderr = &logBuf
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	p := &managedProc{cmd: cmd, log: &logBuf}

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if a, ok := strings.CutPrefix(line, "uafserve: listening on "); ok {
				addrCh <- a
			}
		}
	}()
	select {
	case p.addr = <-addrCh:
		return p, nil
	case <-time.After(15 * time.Second):
		p.kill()
		return nil, fmt.Errorf("uafserve %v did not announce a listen address; stderr:\n%s",
			args, logBuf.String())
	}
}

func (p *managedProc) kill() {
	if p.cmd.Process != nil {
		p.cmd.Process.Kill() //nolint:errcheck
		p.cmd.Wait()         //nolint:errcheck
	}
}
