package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"uafcheck"
	"uafcheck/internal/obs"
)

// watchState tracks one watched file between polls.
type watchState struct {
	src      string   // last content analyzed
	warnings []string // last successfully reported warning set
	known    bool     // at least one successful analysis happened
}

// runWatch is the -watch loop: poll the files every interval, re-run
// the incremental analyzer on any whose content changed, and print only
// the warning diff ("+" appeared, "-" disappeared). The Analyzer's
// per-procedure memo store makes each iteration cost proportional to
// the edit, not the file. Returns when ctx is cancelled; with
// showMetrics the session's aggregate telemetry — including the
// watch.polls and watch.changed_files counters — prints on exit.
func runWatch(ctx context.Context, out io.Writer, an *uafcheck.Analyzer, paths []string, interval time.Duration, showMetrics bool) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	states := make(map[string]*watchState, len(paths))
	for _, p := range paths {
		states[p] = &watchState{}
	}
	rec := obs.New()
	var agg uafcheck.Metrics

	pass := func(first bool) {
		rec.Add(obs.CtrWatchPolls, 1)
		for _, p := range paths {
			st := states[p]
			data, err := os.ReadFile(p)
			if err != nil {
				if first {
					fmt.Fprintf(out, "watch: %s: %v\n", p, err)
				}
				continue
			}
			src := string(data)
			if !first && src == st.src {
				continue
			}
			st.src = src
			rec.Add(obs.CtrWatchChanged, 1)
			rep, err := an.AnalyzeDelta(ctx, p, src)
			if err != nil {
				// Frontend failure mid-edit is normal; keep the last good
				// warning set so the eventual diff is against it.
				fmt.Fprintf(out, "watch: %s: %v\n", p, err)
				continue
			}
			agg.Merge(rep.Metrics)
			uafcheck.SortWarnings(rep.Warnings)
			next := make([]string, len(rep.Warnings))
			for i, w := range rep.Warnings {
				next[i] = w.String()
			}
			if first || !st.known {
				fmt.Fprintf(out, "watch: %s: %d warning(s)\n", p, len(next))
				for _, w := range next {
					fmt.Fprintf(out, "+ %s\n", w)
				}
			} else {
				added, removed := diffWarnings(st.warnings, next)
				if len(added)+len(removed) > 0 {
					fmt.Fprintf(out, "watch: %s: %+d/-%d warning(s)\n", p, len(added), len(removed))
					for _, w := range removed {
						fmt.Fprintf(out, "- %s\n", w)
					}
					for _, w := range added {
						fmt.Fprintf(out, "+ %s\n", w)
					}
				}
			}
			st.warnings = next
			st.known = true
		}
	}

	pass(true)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			if showMetrics {
				agg.Merge(rec.Snapshot())
				fmt.Fprintf(out, "watch metrics:\n%s", indent(agg.FormatText()))
			}
			return
		case <-ticker.C:
			pass(false)
		}
	}
}

// diffWarnings computes the multiset difference between two rendered
// warning lists: which lines appeared and which disappeared. Both
// outputs come back sorted for stable display.
func diffWarnings(old, new []string) (added, removed []string) {
	counts := make(map[string]int, len(old))
	for _, w := range old {
		counts[w]++
	}
	for _, w := range new {
		if counts[w] > 0 {
			counts[w]--
		} else {
			added = append(added, w)
		}
	}
	for w, n := range counts {
		for i := 0; i < n; i++ {
			removed = append(removed, w)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	return added, removed
}
