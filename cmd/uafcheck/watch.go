package main

import (
	"context"
	"fmt"
	"io"
	"time"

	"uafcheck"
	"uafcheck/internal/watch"
)

// runWatch is the -watch entry point: a thin shim over the supervised
// internal/watch service. Roots may be files or directory trees (the
// service rescans trees every poll); newAnalyzer is called at startup
// and again whenever the watchdog abandons a wedged analyzer. Returns
// when ctx is cancelled; with showMetrics the session's aggregate
// telemetry — including the watch.* counters and the watchdog state
// gauge — prints on exit.
func runWatch(ctx context.Context, out io.Writer, newAnalyzer func() *uafcheck.Analyzer,
	roots []string, interval, hangTimeout time.Duration, showMetrics bool) {
	svc := watch.New(watch.Config{
		Roots:       roots,
		Interval:    interval,
		HangTimeout: hangTimeout,
		Out:         out,
		NewAnalyzer: func() watch.Analyzer { return newAnalyzer() },
	})
	svc.Run(ctx)
	if showMetrics {
		fmt.Fprintf(out, "watch metrics:\n%s", indent(svc.Metrics().FormatText()))
	}
}
