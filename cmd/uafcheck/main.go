// Command uafcheck runs the use-after-free analysis over MiniChapel
// source files, printing compiler-style warnings — the reproduction of
// the paper's modified Chapel compiler pass.
//
// Usage:
//
//	uafcheck [flags] file.chpl [file2.chpl ...]
//
// Flags:
//
//	-ccfg        also print the Concurrent Control Flow Graph
//	-dot         print the CCFG in Graphviz dot syntax
//	-trace       also print the Parallel Program State table
//	-stats       print per-procedure analysis statistics
//	-no-prune    disable CCFG pruning rules A-D
//	-oracle N    validate warnings dynamically with N random schedules
//	-seed S      oracle schedule seed
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"uafcheck"
)

func main() {
	var (
		showCCFG = flag.Bool("ccfg", false, "print the CCFG as text")
		showDot  = flag.Bool("dot", false, "print the CCFG as Graphviz dot")
		trace    = flag.Bool("trace", false, "print the PPS exploration table")
		stats    = flag.Bool("stats", false, "print per-procedure statistics")
		noPrune  = flag.Bool("no-prune", false, "disable pruning rules A-D")
		atomics  = flag.Bool("model-atomics", false, "model atomic fills/waits (§VII extension)")
		count    = flag.Bool("count-atomics", false, "counting refinement of the atomics extension")
		fix      = flag.Bool("fix", false, "synthesize and verify synchronization fixes; print the repaired source")
		execProc = flag.String("exec", "", "execute the named proc once under a random schedule and print its event trace")
		oracle   = flag.Int("oracle", 0, "validate warnings with N random schedules (0 = off)")
		seed     = flag.Int64("seed", 1, "oracle schedule seed")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: uafcheck [flags] file.chpl ...")
		flag.PrintDefaults()
		os.Exit(2)
	}

	opts := uafcheck.DefaultOptions()
	opts.Prune = !*noPrune
	opts.Trace = *trace
	opts.ModelAtomics = *atomics
	opts.CountAtomics = *count

	exit := 0
	var paths []string
	for _, arg := range flag.Args() {
		st, err := os.Stat(arg)
		if err == nil && st.IsDir() {
			// Analyze every .chpl file under the directory.
			filepath.WalkDir(arg, func(p string, d fs.DirEntry, err error) error {
				if err == nil && !d.IsDir() && strings.HasSuffix(p, ".chpl") {
					paths = append(paths, p)
				}
				return nil
			})
			continue
		}
		paths = append(paths, arg)
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uafcheck: %v\n", err)
			exit = 1
			continue
		}
		src := string(data)
		rep, err := uafcheck.AnalyzeWithOptions(path, src, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			exit = 1
			continue
		}
		for _, w := range rep.Warnings {
			fmt.Println(w)
		}
		for _, n := range rep.Notes {
			fmt.Println(n)
		}
		if *showCCFG || *showDot {
			for _, ps := range rep.Stats {
				render := uafcheck.CCFGText
				if *showDot {
					render = uafcheck.CCFGDot
				}
				out, err := render(path, src, ps.Proc)
				if err == nil {
					fmt.Println(out)
				}
			}
		}
		if *trace {
			for proc, tr := range rep.PPSTraces {
				fmt.Printf("PPS trace for proc %s:\n%s", proc, tr)
			}
		}
		if *stats {
			for _, ps := range rep.Stats {
				fmt.Printf("proc %-20s nodes=%-4d tasks=%-3d pruned=%-3d tracked=%-4d protected=%-4d states=%-6d merged=%-6d sinks=%-4d deadlocks=%d\n",
					ps.Proc, ps.Nodes, ps.Tasks, ps.PrunedTasks, ps.TrackedAccesses,
					ps.ProtectedAccesses, ps.StatesProcessed, ps.StatesMerged, ps.Sinks, ps.Deadlocks)
			}
		}
		if *oracle > 0 && len(rep.Warnings) > 0 {
			validateDynamically(path, src, rep, *oracle, *seed)
		}
		if *execProc != "" {
			out, events, err := uafcheck.ExecuteTraced(path, src, *execProc, *seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "exec: %v\n", err)
			} else {
				fmt.Printf("---- execution trace of %s (seed %d) ----\n", *execProc, *seed)
				for _, e := range events {
					fmt.Println(e)
				}
				for _, o := range out {
					fmt.Println("output:", o)
				}
			}
		}
		if *fix && len(rep.Warnings) > 0 {
			fr, err := uafcheck.RepairSource(path, src, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "repair: %v\n", err)
			} else {
				for _, s := range fr.Steps {
					extra := ""
					if s.Token != "" {
						extra = " (token " + s.Token + ")"
					}
					fmt.Printf("fix: %s in %s/%s%s\n", s.Strategy, s.Proc, s.Task, extra)
				}
				fmt.Printf("fix: %d -> %d warnings\n", fr.InitialWarnings, fr.RemainingWarnings)
				fmt.Println("---- repaired source ----")
				fmt.Print(fr.Fixed)
			}
		}
		if len(rep.Warnings) > 0 {
			exit = 1
		}
	}
	os.Exit(exit)
}

func validateDynamically(path, src string, rep *uafcheck.Report, runs int, seed int64) {
	byProc := make(map[string][]uafcheck.Warning)
	for _, w := range rep.Warnings {
		byProc[w.Proc] = append(byProc[w.Proc], w)
	}
	for proc, ws := range byProc {
		dyn, err := uafcheck.ExploreSchedules(path, src, proc, runs, seed, false)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oracle: %v\n", err)
			return
		}
		for _, w := range ws {
			verdict := "NOT OBSERVED (possible false positive)"
			if dyn.ObservedUAF(w.Var, w.AccessLine) {
				verdict = "CONFIRMED use-after-free"
			}
			fmt.Printf("oracle: %s:%d %s in %s: %s (%d schedules)\n",
				w.Var, w.AccessLine, w.Task, proc, verdict, dyn.Runs)
		}
	}
}
