// Command uafcheck runs the use-after-free analysis over MiniChapel
// source files, printing compiler-style warnings — the reproduction of
// the paper's modified Chapel compiler pass.
//
// Usage:
//
//	uafcheck [flags] file.chpl [file2.chpl ...]
//
// Flags:
//
//	-ccfg           also print the Concurrent Control Flow Graph
//	-dot            print the CCFG in Graphviz dot syntax
//	-trace          also print the Parallel Program State table
//	-stats          print per-file analysis statistics (from Metrics)
//	-metrics        print phase timings, counters and gauges
//	-explain        print each warning's provenance chain
//	-trace-out=F    append the telemetry trace to F as JSON lines,
//	                including each file's hierarchical span tree
//	                (trace_span lines: file -> phases -> PPS waves)
//	-prom-out=F     write aggregated metrics to F in Prometheus format
//	-format=F       output format: text (default), json (one canonical
//	                result line per file — byte-identical to a uafserve
//	                response for the same input and options), or sarif
//	                (SARIF 2.1.0 for code-scanning consumers)
//	-module         analyze all inputs together as one module: cross-file
//	                calls resolve against every file, callee summaries
//	                compose at call boundaries, and escaping tasks are
//	                attributed to their callers (docs/INTERPROCEDURAL.md)
//	-no-prune       disable CCFG pruning rules A-D
//	-oracle N       validate warnings dynamically with N random schedules
//	-seed S         oracle schedule seed
//	-timeout D      per-file analysis deadline (degrades, never truncates)
//	-deadline D     wall-clock bound for the whole run
//	-jobs N         parallel file workers for multi-file runs (0 = GOMAXPROCS)
//	-par N          parallel PPS exploration workers inside each analysis
//	                (0 = batch default of 1; total concurrency ≈ jobs × par)
//	-retries N      retry a timed-out file N times with shrinking budgets
//	-cache-dir D    persist a content-addressed report cache under D;
//	                unchanged files on unchanged options are served
//	                from the cache without re-analysis
//	-cache-size N   in-memory cache entries (0 = default 1024)
//	-watch          stay resident: poll the files (or whole directory
//	                trees, rescanned every poll), re-analyze changed
//	                ones incrementally (only edited procedures are
//	                recomputed), and print warning diffs (+/-) instead
//	                of full reports. A watchdog abandons hung analyses
//	                and restarts the analyzer with backoff, serving
//	                last-known-good warnings meanwhile.
//	-interval D     -watch poll interval (default 500ms)
//	-hang-timeout D -watch per-analysis watchdog timeout (default 30s)
//
// Exit codes:
//
//	0  clean — every file analyzed completely, no warnings
//	1  warnings — at least one exact (non-degraded) warning
//	2  degraded — some analysis was incomplete (budget, deadline,
//	   cancellation or a recovered crash); warnings are conservative
//	3  errors — unreadable inputs or frontend (parse/resolve) failures
package main

import (
	"context"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"uafcheck"
	"uafcheck/internal/wire"
)

func main() {
	var (
		showCCFG    = flag.Bool("ccfg", false, "print the CCFG as text")
		showDot     = flag.Bool("dot", false, "print the CCFG as Graphviz dot")
		trace       = flag.Bool("trace", false, "print the PPS exploration table")
		stats       = flag.Bool("stats", false, "print per-file statistics (sourced from the metrics snapshot)")
		metrics     = flag.Bool("metrics", false, "print phase timings, counters and gauges")
		explain     = flag.Bool("explain", false, "print each warning's provenance (CCFG node, sink PPS, transition chain)")
		traceOut    = flag.String("trace-out", "", "append the telemetry trace to this file as JSON lines")
		promOut     = flag.String("prom-out", "", "write aggregated metrics to this file in Prometheus text format")
		module      = flag.Bool("module", false, "analyze all inputs together as one module (cross-file interprocedural analysis)")
		noPrune     = flag.Bool("no-prune", false, "disable pruning rules A-D")
		atomics     = flag.Bool("model-atomics", false, "model atomic fills/waits (§VII extension)")
		count       = flag.Bool("count-atomics", false, "counting refinement of the atomics extension")
		fix         = flag.Bool("fix", false, "synthesize and verify synchronization fixes; print verified unified diffs (with -format sarif: embed them as SARIF fixes; with -format json: append repair NDJSON lines)")
		execProc    = flag.String("exec", "", "execute the named proc once under a random schedule and print its event trace")
		oracle      = flag.Int("oracle", 0, "validate warnings with N random schedules (0 = off)")
		seed        = flag.Int64("seed", 1, "oracle schedule seed")
		timeout     = flag.Duration("timeout", 0, "per-file analysis deadline (0 = none); on expiry the file degrades to conservative warnings")
		deadline    = flag.Duration("deadline", 0, "wall-clock bound for the whole run (0 = none)")
		jobs        = flag.Int("jobs", 0, "parallel file workers (0 = GOMAXPROCS)")
		par         = flag.Int("par", 0, "parallel PPS exploration workers per analysis (0 = 1 in batch runs; total ≈ jobs × par)")
		retries     = flag.Int("retries", 0, "extra attempts for a timed-out file, each with a 4x smaller state budget")
		cacheDir    = flag.String("cache-dir", "", "directory for the persistent content-addressed report cache (empty = no cache)")
		cacheSize   = flag.Int("cache-size", 0, "in-memory report cache entries (0 = default)")
		format      = flag.String("format", "text", "output format: text, json (canonical result lines) or sarif")
		watch       = flag.Bool("watch", false, "poll the files or trees and print incremental warning diffs on change")
		interval    = flag.Duration("interval", 500*time.Millisecond, "-watch poll interval")
		hangTimeout = flag.Duration("hang-timeout", 30*time.Second, "-watch per-analysis hang watchdog timeout")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: uafcheck [flags] file.chpl ...")
		flag.PrintDefaults()
		os.Exit(3)
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "uafcheck: unknown -format %q (want text, json or sarif)\n", *format)
		os.Exit(3)
	}

	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.OpenFile(*traceOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uafcheck: %v\n", err)
			os.Exit(3)
		}
		traceFile = f
		defer f.Close()
	}

	var paths []string
	for _, arg := range flag.Args() {
		st, err := os.Stat(arg)
		if err == nil && st.IsDir() {
			// Analyze every .chpl file under the directory.
			filepath.WalkDir(arg, func(p string, d fs.DirEntry, err error) error {
				if err == nil && !d.IsDir() && strings.HasSuffix(p, ".chpl") {
					paths = append(paths, p)
				}
				return nil
			})
			continue
		}
		paths = append(paths, arg)
	}
	// Deterministic multi-file output: directory walks and shell globs
	// may deliver paths in any order.
	sort.Strings(paths)

	ioErrors := false
	var files []uafcheck.FileInput
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uafcheck: %v\n", err)
			ioErrors = true
			continue
		}
		files = append(files, uafcheck.FileInput{Name: path, Src: string(data)})
	}

	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	if *watch {
		// Resident mode: a supervised watch service over the raw args —
		// directory roots stay directories so the tree is rescanned
		// every poll (created files join, deleted files drop). Each
		// analyzer generation keeps the per-procedure memo store across
		// iterations; the watchdog rebuilds it if an analysis wedges.
		// Runs until killed (or the -deadline expires).
		newAnalyzer := func() *uafcheck.Analyzer {
			return uafcheck.NewAnalyzer(
				uafcheck.WithPrune(!*noPrune),
				uafcheck.WithAtomicsModel(*atomics),
				uafcheck.WithAtomicsCounting(*count),
				uafcheck.WithParallelism(*par),
				uafcheck.WithDeadline(*timeout),
			)
		}
		runWatch(ctx, os.Stdout, newAnalyzer, flag.Args(), *interval, *hangTimeout, *metrics)
		os.Exit(0)
	}

	// All file sets — including a single file — go through the batch
	// driver: per-file deadlines, retry-with-smaller-budget and panic
	// isolation apply uniformly, and results come back index-aligned so
	// output order matches the sorted path list.
	apiOpts := []uafcheck.Option{
		uafcheck.WithPrune(!*noPrune),
		uafcheck.WithTrace(*trace),
		uafcheck.WithAtomicsModel(*atomics),
		uafcheck.WithAtomicsCounting(*count),
		uafcheck.WithParallelism(*par),
		uafcheck.WithWorkers(*jobs),
		uafcheck.WithFileTimeout(*timeout),
		uafcheck.WithRetries(*retries),
		// -trace-out implies span recording: each file's JSONL gets its
		// full span tree (file -> phases -> per-proc -> PPS waves).
		uafcheck.WithTracing(*traceOut != ""),
	}
	if *cacheDir != "" {
		apiOpts = append(apiOpts, uafcheck.WithCache(uafcheck.NewCache(uafcheck.CacheConfig{
			MaxEntries: *cacheSize,
			Dir:        *cacheDir,
		})))
	}

	if *module {
		runModule(ctx, files, apiOpts, *format, *metrics, *explain, ioErrors)
		// runModule exits.
	}

	batchRep := uafcheck.AnalyzeFilesContext(ctx, files, apiOpts...)

	// -fix: run the repair engine over every file whose analysis found
	// warnings on clean (non-degraded) evidence. Degraded reports are
	// refused by Repair with the typed sentinel — conservative warnings
	// must never drive a patch — and the refusal is reported, not
	// silently skipped.
	var repairs map[string]*uafcheck.RepairReport
	if *fix {
		repairs = make(map[string]*uafcheck.RepairReport)
		repairOpts := []uafcheck.Option{
			uafcheck.WithPrune(!*noPrune),
			uafcheck.WithAtomicsModel(*atomics),
			uafcheck.WithAtomicsCounting(*count),
			uafcheck.WithParallelism(*par),
			uafcheck.WithDeadline(*timeout),
		}
		for i, fr := range batchRep.Files {
			if fr.Err != nil || fr.Report == nil || len(fr.Report.Warnings) == 0 {
				continue
			}
			rr, err := uafcheck.Repair(ctx, files[i].Name, files[i].Src, repairOpts...)
			if err != nil {
				fmt.Fprintf(os.Stderr, "uafcheck: repair %s: %v\n", files[i].Name, err)
				continue
			}
			repairs[files[i].Name] = rr
		}
	}

	if *format != "text" {
		// Machine-readable formats own stdout entirely: the canonical
		// wire encoding shared with the uafserve daemon, so piping a
		// file through the CLI and POSTing it to the server produce
		// identical bytes. Display flags (-ccfg, -stats, ...) are
		// text-format concerns and are ignored here.
		results := make([]wire.Result, len(batchRep.Files))
		for i, fr := range batchRep.Files {
			results[i] = wire.NewResult(files[i].Name, fr.Report, fr.Err, *metrics)
		}
		if err := emitFormatted(os.Stdout, *format, results, repairs); err != nil {
			fmt.Fprintf(os.Stderr, "uafcheck: %v\n", err)
			ioErrors = true
		}
		exit := batchRep.ExitCode()
		if ioErrors {
			exit = 3
		}
		os.Exit(exit)
	}

	var agg uafcheck.Metrics
	for i, fr := range batchRep.Files {
		path, src := files[i].Name, files[i].Src
		if fr.Err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", fr.Err)
			continue
		}
		rep := fr.Report
		if rep == nil {
			fmt.Fprintf(os.Stderr, "uafcheck: %s: analysis %s after %d attempt(s) in %v\n",
				path, fr.Status, fr.Attempts, fr.Duration.Round(time.Millisecond))
			continue
		}
		if traceFile != nil {
			// Header line so the JSONL trace attributes spans to inputs.
			// Emitted here, after the parallel run, so multi-file traces
			// stay ordered and never interleave.
			if tr := rep.Metrics.Trace; len(tr) > 0 {
				fmt.Fprintf(traceFile, "{\"type\":\"run\",\"file\":%q,\"trace_id\":%q}\n",
					path, tr[0].TraceID)
			} else {
				fmt.Fprintf(traceFile, "{\"type\":\"run\",\"file\":%q}\n", path)
			}
			if err := uafcheck.JSONLinesMetricsSink(traceFile).Emit(rep.Metrics); err != nil {
				fmt.Fprintf(os.Stderr, "uafcheck: trace-out: %v\n", err)
			}
		}
		agg.Merge(rep.Metrics)
		if d := rep.Degraded; d != nil {
			fmt.Fprintf(os.Stderr, "uafcheck: %s: analysis degraded (%s); warnings are conservative\n",
				path, d.Reason)
			for _, c := range d.Crashes {
				fmt.Fprintf(os.Stderr, "uafcheck: %s: recovered panic in phase %s: %s\n", path, c.Phase, c.Err)
			}
		}
		uafcheck.SortWarnings(rep.Warnings)
		for _, w := range rep.Warnings {
			fmt.Println(w)
			if *explain {
				printProvenance(w)
			}
		}
		for _, n := range rep.Notes {
			fmt.Println(n)
		}
		if *showCCFG || *showDot {
			for _, ps := range rep.Stats {
				render := uafcheck.CCFGText
				if *showDot {
					render = uafcheck.CCFGDot
				}
				out, err := render(path, src, ps.Proc)
				if err == nil {
					fmt.Println(out)
				}
			}
		}
		if *trace {
			for proc, tr := range rep.PPSTraces {
				fmt.Printf("PPS trace for proc %s:\n%s", proc, tr)
			}
		}
		if *stats {
			printStats(path, rep.Metrics)
		}
		if *metrics {
			fmt.Printf("metrics for %s:\n%s", path, indent(rep.Metrics.FormatText()))
		}
		if *oracle > 0 && len(rep.Warnings) > 0 {
			validateDynamically(path, src, rep, *oracle, *seed)
		}
		if *execProc != "" {
			out, events, err := uafcheck.ExecuteTraced(path, src, *execProc, *seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "exec: %v\n", err)
			} else {
				fmt.Printf("---- execution trace of %s (seed %d) ----\n", *execProc, *seed)
				for _, e := range events {
					fmt.Println(e)
				}
				for _, o := range out {
					fmt.Println("output:", o)
				}
			}
		}
		if rr := repairs[path]; rr != nil {
			for _, p := range rr.Patches {
				extra := ""
				if p.Token != "" {
					extra = " (token " + p.Token + ")"
				}
				fmt.Printf("fix: %s in %s/%s%s [%d -> %d warnings; %s]\n",
					p.Strategy, p.Proc, p.Task, extra,
					p.Verdict.WarningsBefore, p.Verdict.WarningsAfter,
					strings.Join(p.Verdict.Checks, "+"))
			}
			fmt.Printf("fix: %d -> %d warnings\n", rr.InitialWarnings, rr.RemainingWarnings)
			if rr.Diff != "" {
				fmt.Print(rr.Diff)
			}
		}
	}
	if s := batchRep.Summary; s.Degradations() > 0 {
		fmt.Fprintf(os.Stderr,
			"uafcheck: %d/%d file(s) degraded (%d budget/cancelled, %d timed out, %d crashed; %d retries)\n",
			s.Degradations(), s.Files, s.Degraded, s.TimedOut, s.Crashed, s.Retries)
	}
	if *promOut != "" {
		f, err := os.Create(*promOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uafcheck: %v\n", err)
			os.Exit(3)
		}
		if err := uafcheck.PrometheusMetricsSink(f).Emit(agg); err != nil {
			fmt.Fprintf(os.Stderr, "uafcheck: %v\n", err)
			ioErrors = true
		}
		f.Close()
	}
	exit := batchRep.ExitCode()
	if ioErrors {
		exit = 3
	}
	os.Exit(exit)
}

// runModule is the -module driver: every input file is linked into one
// module and analyzed interprocedurally, then the per-file reports are
// rendered with the same formats as the batch path. Frontend and
// unresolved-call failures reject the whole module (exit 3) — a module
// is one unit of analysis, not a bag of files.
func runModule(ctx context.Context, files []uafcheck.FileInput, apiOpts []uafcheck.Option, format string, metrics, explain, ioErrors bool) {
	mfiles := make([]uafcheck.ModuleFile, len(files))
	for i, f := range files {
		mfiles[i] = uafcheck.ModuleFile{Name: f.Name, Src: f.Src}
	}
	mrep, err := uafcheck.AnalyzeModuleContext(ctx, mfiles, apiOpts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		os.Exit(3)
	}
	exit := mrep.ExitCode()
	if ioErrors {
		exit = 3
	}
	if format != "text" {
		results := make([]wire.Result, len(mrep.Files))
		for i, fr := range mrep.Files {
			results[i] = wire.NewResult(fr.Name, fr.Report, fr.Err, metrics)
		}
		if err := emitFormatted(os.Stdout, format, results, nil); err != nil {
			fmt.Fprintf(os.Stderr, "uafcheck: %v\n", err)
			exit = 3
		}
		os.Exit(exit)
	}
	for _, fr := range mrep.Files {
		rep := fr.Report
		if rep == nil {
			continue
		}
		if d := rep.Degraded; d != nil {
			fmt.Fprintf(os.Stderr, "uafcheck: %s: analysis degraded (%s); warnings are conservative\n",
				fr.Name, d.Reason)
			for _, c := range d.Crashes {
				fmt.Fprintf(os.Stderr, "uafcheck: %s: recovered panic in phase %s: %s\n", fr.Name, c.Phase, c.Err)
			}
		}
		uafcheck.SortWarnings(rep.Warnings)
		for _, w := range rep.Warnings {
			fmt.Println(w)
			if explain {
				printProvenance(w)
			}
		}
		for _, n := range rep.Notes {
			fmt.Println(n)
		}
	}
	if metrics {
		fmt.Printf("module metrics:\n%s", indent(mrep.Metrics.FormatText()))
	}
	os.Exit(exit)
}

// emitFormatted renders the machine-readable formats: "json" writes
// one canonical result line per file, "sarif" one indented SARIF 2.1.0
// document covering every file. With -fix results, sarif embeds each
// file's verified patches as SARIF fixes and json appends the repair
// NDJSON lines (kind patch/summary) after the file's result line.
func emitFormatted(w *os.File, format string, results []wire.Result, repairs map[string]*uafcheck.RepairReport) error {
	if format == "sarif" {
		b, err := wire.SARIFWithFixes(results, repairs).EncodeIndent()
		if err != nil {
			return err
		}
		_, err = w.Write(b)
		return err
	}
	for _, res := range results {
		line, err := res.Encode()
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
		if rr := repairs[res.Name]; rr != nil {
			b, err := wire.EncodeRepair(res.Name, rr)
			if err != nil {
				return err
			}
			if _, err := w.Write(b); err != nil {
				return err
			}
		}
	}
	return nil
}

// printProvenance renders the explain-mode block under a warning.
func printProvenance(w uafcheck.Warning) {
	p := w.Prov
	if p == nil {
		fmt.Println("  explain: no provenance recorded")
		return
	}
	fmt.Printf("  explain: access %q performed in CCFG node %s\n", w.Var, p.Node)
	switch {
	case p.SinkPPS < 0:
		fmt.Println("  explain: never attributed to any executed sync event on any explored path")
	case p.Stuck:
		fmt.Printf("  explain: still pending in OV of deadlocked PPS %d\n", p.SinkPPS)
	default:
		fmt.Printf("  explain: still pending in OV of sink PPS %d\n", p.SinkPPS)
	}
	if len(p.Chain) > 0 {
		fmt.Printf("  explain: transition chain: %s\n", strings.Join(p.Chain, " -> "))
	}
}

// printStats renders the per-file summary, sourced exclusively from the
// metrics snapshot so -stats and -metrics can never disagree.
func printStats(path string, m uafcheck.Metrics) {
	c := m.Counter
	fmt.Printf("stats for %s:\n", path)
	fmt.Printf("  procs=%d warnings=%d nodes=%d tasks=%d pruned=%d (A=%d B=%d C=%d D=%d) tracked=%d protected=%d\n",
		c("analysis.procs"), c("analysis.warnings"), c("ccfg.nodes"), c("ccfg.tasks"),
		c("prune.tasks"), c("prune.rule_a"), c("prune.rule_b"), c("prune.rule_c"), c("prune.rule_d"),
		c("ccfg.tracked_accesses"), c("ccfg.protected_accesses"))
	fmt.Printf("  states: created=%d processed=%d merged=%d forked=%d sinks=%d deadlock-states=%d peak-frontier=%d\n",
		c("pps.states_created"), c("pps.states_processed"), c("pps.states_merged"),
		c("pps.states_forked"), c("pps.sinks"), c("pps.deadlocks"), m.Gauge("pps.peak_frontier"))
}

// indent shifts a block two spaces for nesting under a header line.
func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, ln := range lines {
		lines[i] = "  " + ln
	}
	return strings.Join(lines, "\n") + "\n"
}

func validateDynamically(path, src string, rep *uafcheck.Report, runs int, seed int64) {
	byProc := make(map[string][]uafcheck.Warning)
	var procs []string
	for _, w := range rep.Warnings {
		if _, ok := byProc[w.Proc]; !ok {
			procs = append(procs, w.Proc)
		}
		byProc[w.Proc] = append(byProc[w.Proc], w)
	}
	sort.Strings(procs)
	for _, proc := range procs {
		ws := byProc[proc]
		dyn, err := uafcheck.ExploreSchedules(path, src, proc, runs, seed, false)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oracle: %v\n", err)
			return
		}
		for _, w := range ws {
			verdict := "NOT OBSERVED (possible false positive)"
			if dyn.ObservedUAF(w.Var, w.AccessLine) {
				verdict = "CONFIRMED use-after-free"
			}
			fmt.Printf("oracle: %s:%d %s in %s: %s (%d schedules)\n",
				w.Var, w.AccessLine, w.Task, proc, verdict, dyn.Runs)
		}
	}
}
