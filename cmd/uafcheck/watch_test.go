package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"uafcheck"
)

// syncBuf is a mutex-guarded output buffer: runWatch writes from its
// own goroutine while the test polls String.
type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestRunWatchDiffsOnEdit drives one full watch cycle against a real
// file: initial report, an edit that removes the warning, and the
// resulting "-" diff line.
func TestRunWatchDiffsOnEdit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.chpl")
	buggy := "proc p() {\n  var x: int = 0;\n  begin with (ref x) {\n    x = 1;\n  }\n}\n"
	fixed := "proc p() {\n  var x: int = 0;\n  sync {\n    begin with (ref x) {\n      x = 1;\n    }\n  }\n}\n"
	if err := os.WriteFile(path, []byte(buggy), 0o644); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	an := uafcheck.NewAnalyzer()
	var out syncBuf
	done := make(chan struct{})
	go func() {
		defer close(done)
		runWatch(ctx, &out, func() *uafcheck.Analyzer { return an },
			[]string{path}, time.Millisecond, time.Minute, true)
	}()

	deadline := time.Now().Add(5 * time.Second)
	waitFor := func(substr string) {
		t.Helper()
		for time.Now().Before(deadline) {
			if strings.Contains(out.String(), substr) {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("watch output never contained %q:\n%s", substr, out.String())
	}

	// The initial pass reports the dangerous write.
	waitFor("+ " + path)
	if !strings.Contains(out.String(), "1 warning(s)") {
		t.Fatalf("initial pass should report one warning:\n%s", out.String())
	}
	// Fixing the file must produce a removal diff, not a full report.
	if err := os.WriteFile(path, []byte(fixed), 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor("- " + path)
	cancel()
	<-done

	if st := an.Stats(); st.Files < 2 {
		t.Errorf("analyzer should have seen both versions: %+v", st)
	}

	// showMetrics prints the session aggregate on exit, including the
	// watch loop's own counters.
	got := out.String()
	if !strings.Contains(got, "watch metrics:") {
		t.Fatalf("watch exit should print metrics:\n%s", got)
	}
	for _, ctr := range []string{"watch.polls", "watch.changed_files"} {
		if !strings.Contains(got, ctr) {
			t.Errorf("watch metrics missing %s counter:\n%s", ctr, got)
		}
	}
}
