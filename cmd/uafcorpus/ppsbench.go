package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"uafcheck"
)

// ppsBenchArtifact is the BENCH_pps.json schema: host shape, corpus
// wall-clock at Parallelism 1 vs 4 with a warning-set identity check, a
// wide-fanout micro-benchmark of the wave explorer, and the
// content-addressed cache's cold-vs-warm speedup.
type ppsBenchArtifact struct {
	Host   hostInfo `json:"host"`
	Corpus struct {
		Cases             int     `json:"cases"`
		SeqMS             int64   `json:"seq_ms"`
		Par4MS            int64   `json:"par4_ms"`
		ParSpeedup        float64 `json:"par_speedup"`
		Warnings          int     `json:"warnings"`
		IdenticalWarnings bool    `json:"identical_warnings"`
	} `json:"corpus"`
	Fanout struct {
		Tasks           int   `json:"tasks"`
		StatesProcessed int   `json:"states_processed"`
		SeqUS           int64 `json:"seq_us"`
		Par4US          int64 `json:"par4_us"`
	} `json:"fanout"`
	Cache struct {
		ColdMS  int64   `json:"cold_ms"`
		WarmMS  int64   `json:"warm_ms"`
		Speedup float64 `json:"speedup"`
		Hits    int64   `json:"hits"`
		Misses  int64   `json:"misses"`
	} `json:"cache"`
	Note string `json:"note"`
}

// runPPSBench measures the parallel wave explorer and the report cache
// over the already-generated corpus and writes the artifact.
func runPPSBench(cases []uafcheck.CorpusCase, out string) error {
	ctx := context.Background()
	art := ppsBenchArtifact{Host: currentHost()}
	art.Note = "par_speedup needs >= 4 hardware threads to show the parallel win; " +
		"identical_warnings is the determinism contract and must hold everywhere"

	// Corpus pass at Parallelism=1 vs 4. The warning sets must be
	// byte-identical: parallel exploration is deterministic by design.
	pass := func(par int) (time.Duration, []string) {
		start := time.Now()
		var warnings []string
		for i := range cases {
			rep, err := uafcheck.AnalyzeContext(ctx, cases[i].Name, cases[i].Source,
				uafcheck.WithParallelism(par))
			if err != nil {
				continue // frontend-rejected cases count for neither pass
			}
			for _, w := range rep.Warnings {
				warnings = append(warnings, cases[i].Name+": "+w.String())
			}
		}
		sort.Strings(warnings)
		return time.Since(start), warnings
	}
	seqDur, seqWarn := pass(1)
	parDur, parWarn := pass(4)
	art.Corpus.Cases = len(cases)
	art.Corpus.SeqMS = seqDur.Milliseconds()
	art.Corpus.Par4MS = parDur.Milliseconds()
	if parDur > 0 {
		art.Corpus.ParSpeedup = float64(seqDur) / float64(parDur)
	}
	art.Corpus.Warnings = len(seqWarn)
	art.Corpus.IdenticalWarnings = strings.Join(seqWarn, "\n") == strings.Join(parWarn, "\n")
	if !art.Corpus.IdenticalWarnings {
		return fmt.Errorf("pps-bench: warning sets differ between Parallelism=1 (%d) and Parallelism=4 (%d)",
			len(seqWarn), len(parWarn))
	}

	// Wide-fanout micro-benchmark: frontiers broad enough to cross the
	// parallel threshold, timed per exploration.
	fanout := fanoutProgram(7)
	art.Fanout.Tasks = 7
	timeOne := func(par int) (time.Duration, int) {
		const reps = 3
		best := time.Duration(0)
		states := 0
		for r := 0; r < reps; r++ {
			start := time.Now()
			rep, err := uafcheck.AnalyzeContext(ctx, "fan.chpl", fanout,
				uafcheck.WithParallelism(par))
			if err != nil {
				return 0, 0
			}
			d := time.Since(start)
			if best == 0 || d < best {
				best = d
			}
			for _, ps := range rep.Stats {
				states = ps.StatesProcessed
			}
		}
		return best, states
	}
	seqOne, states := timeOne(1)
	parOne, _ := timeOne(4)
	art.Fanout.StatesProcessed = states
	art.Fanout.SeqUS = seqOne.Microseconds()
	art.Fanout.Par4US = parOne.Microseconds()

	// Cache cold vs warm: the second pass over an unchanged corpus is
	// served entirely by content-addressed hits.
	cc := uafcheck.NewCache(uafcheck.CacheConfig{MaxEntries: len(cases) + 1})
	cachePass := func() time.Duration {
		start := time.Now()
		for i := range cases {
			uafcheck.AnalyzeContext(ctx, cases[i].Name, cases[i].Source, //nolint:errcheck
				uafcheck.WithCache(cc))
		}
		return time.Since(start)
	}
	cold := cachePass()
	warm := cachePass()
	st := cc.Stats()
	art.Cache.ColdMS = cold.Milliseconds()
	art.Cache.WarmMS = warm.Milliseconds()
	if warm > 0 {
		art.Cache.Speedup = float64(cold) / float64(warm)
	}
	art.Cache.Hits = st.Hits
	art.Cache.Misses = st.Misses

	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nPPS benchmark: corpus %d cases — seq %v, par4 %v (speedup %.2fx, identical warnings: %v);"+
		" cache cold %v, warm %v (speedup %.1fx)\n",
		art.Corpus.Cases, seqDur.Round(time.Millisecond), parDur.Round(time.Millisecond),
		art.Corpus.ParSpeedup, art.Corpus.IdenticalWarnings,
		cold.Round(time.Millisecond), warm.Round(time.Millisecond), art.Cache.Speedup)
	fmt.Printf("wrote PPS benchmark artifact to %s\n", out)
	return nil
}

// fanoutProgram builds a proc with n sync-chained tasks and two branch
// diamonds — wide frontiers for the parallel explorer.
func fanoutProgram(tasks int) string {
	var sb strings.Builder
	sb.WriteString("config const flag = true;\nproc fan() {\n  var x: int = 1;\n")
	for i := 0; i < tasks; i++ {
		fmt.Fprintf(&sb, "  var d%d$: sync bool;\n", i)
	}
	for i := 0; i < tasks; i++ {
		fmt.Fprintf(&sb, "  begin with (ref x) {\n    x += %d;\n    d%d$ = true;\n  }\n", i+1, i)
	}
	sb.WriteString("  if (flag) { writeln(1); } else { writeln(0); }\n")
	sb.WriteString("  if (flag) { writeln(2); } else { writeln(0); }\n")
	for i := 0; i < tasks; i++ {
		fmt.Fprintf(&sb, "  d%d$;\n", i)
	}
	sb.WriteString("}\n")
	return sb.String()
}
