// Command uafcorpus regenerates the paper's evaluation (§V): it builds
// the synthetic Chapel-1.11-style test suite, runs the analysis over all
// of it, and prints Table I plus the per-pattern breakdown and the §VI
// baseline comparison. With -oracle it also cross-validates the flagged
// programs dynamically.
//
// Usage:
//
//	uafcorpus [-seed N] [-tests N] [-oracle N] [-baselines] [-dump dir]
//	          [-jobs N] [-case-timeout D] [-retries N]
//
// The evaluation runs on the fault-isolated batch driver: every generated
// case gets its own deadline and panic isolation, so one pathological
// program degrades only itself. The robustness summary after Table I
// accounts for every case (ok / degraded / timed out / crashed).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"uafcheck"
	"uafcheck/internal/analysis"
	"uafcheck/internal/batch"
	"uafcheck/internal/eval"
)

// benchArtifact is the schema of the BENCH_corpus.json file: the run
// configuration, wall-clock phase times, Table I, and the per-pattern
// telemetry (timing and state-count histograms).
type benchArtifact struct {
	Host         hostInfo        `json:"host"`
	Seed         int64           `json:"seed"`
	Tests        int             `json:"tests"`
	GenerationMS int64           `json:"generation_ms"`
	AnalysisMS   int64           `json:"analysis_ms"`
	Table        eval.TableI     `json:"table"`
	Telemetry    *eval.Telemetry `json:"telemetry"`
}

// hostInfo records the hardware shape every BENCH_*.json artifact
// carries, so numbers from different machines are never compared as if
// they came from the same one.
type hostInfo struct {
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
}

func currentHost() hostInfo {
	return hostInfo{NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
}

func main() {
	var (
		seed         = flag.Int64("seed", 1711, "corpus generation seed")
		tests        = flag.Int("tests", 5127, "total test cases")
		oracle       = flag.Int("oracle", 0, "dynamic validation schedules per flagged case (0 = off)")
		baselines    = flag.Bool("baselines", false, "also run the §VI baseline comparison")
		pruning      = flag.Bool("pruning", false, "also report §III-A pruning-rule statistics")
		modelAtomics = flag.Bool("model-atomics", false, "enable the atomics extension (§VII future work) and rerun the table")
		countAtomics = flag.Bool("count-atomics", false, "enable the counting refinement of the atomics extension and rerun the table")
		dump         = flag.String("dump", "", "write the generated corpus to this directory")
		benchOut     = flag.String("bench-out", "BENCH_corpus.json", "write the aggregate telemetry artifact to this file (\"\" disables)")
		ppsBenchOut  = flag.String("pps-bench-out", "", "run the parallel-exploration + cache benchmark over the corpus and write the artifact to this file")
		jobs         = flag.Int("jobs", 0, "parallel analysis workers (0 = GOMAXPROCS)")
		caseTimeout  = flag.Duration("case-timeout", 0, "per-case analysis deadline (0 = none); expired cases degrade to conservative warnings")
		retries      = flag.Int("retries", 0, "extra attempts for a timed-out case, each with a 4x smaller state budget")
		incrBenchOut = flag.String("incr-bench-out", "", "run the incremental-analysis benchmark instead of the corpus evaluation and write the artifact to this file")
		incrFiles    = flag.Int("incr-files", 4, "incremental benchmark: number of generated multi-procedure files")
		incrProcs    = flag.Int("incr-procs", 24, "incremental benchmark: procedures per file")
		incrEdits    = flag.Int("incr-edits", 8, "incremental benchmark: single-procedure edits per file")
	)
	flag.Parse()

	if *incrBenchOut != "" {
		// The incremental benchmark is its own mode: cold vs warm
		// re-analysis latency plus the byte-identity check, no corpus run.
		if err := runIncrBench(*incrBenchOut, *seed, *incrFiles, *incrProcs, *incrEdits); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	params := uafcheck.DefaultCorpusParams(*seed)
	if *tests != params.Tests {
		// Scale the population proportionally.
		scale := float64(*tests) / float64(params.Tests)
		params.Tests = *tests
		params.BeginTests = max(1, int(float64(params.BeginTests)*scale))
		params.UnsafeTests = max(1, int(float64(params.UnsafeTests)*scale))
		params.TrueSites = max(1, int(float64(params.TrueSites)*scale))
		params.AtomicFPTests = max(1, int(float64(params.AtomicFPTests)*scale))
		params.FalseSites = max(1, int(float64(params.FalseSites)*scale))
	}

	start := time.Now()
	cases := uafcheck.GenerateCorpus(params)
	genTime := time.Since(start)

	if *dump != "" {
		if err := os.MkdirAll(*dump, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, c := range cases {
			path := filepath.Join(*dump, c.Name+".chpl")
			if err := os.WriteFile(path, []byte(c.Source), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		fmt.Printf("wrote %d test programs to %s\n", len(cases), *dump)
	}

	start = time.Now()
	table, det, robust := eval.RunTableIBatch(cases, analysis.DefaultOptions(), batch.Options{
		Workers:     *jobs,
		FileTimeout: *caseTimeout,
		Retries:     *retries,
	})
	breakdown := det.FormatPatternBreakdown()
	anaTime := time.Since(start)

	fmt.Printf("Table I — use-after-free check over the synthetic suite (seed %d)\n", *seed)
	fmt.Print(table.Format())
	fmt.Printf("\nPaper reference: 5127 / 218 / 38 / 437 / 63 / 14.4%%\n")
	fmt.Printf("generation %v, analysis %v\n\n", genTime.Round(time.Millisecond), anaTime.Round(time.Millisecond))
	fmt.Printf("Robustness: %d cases — %d ok, %d degraded, %d timed out, %d crashed, %d frontend errors (%d retries)\n\n",
		robust.Files, robust.OK, robust.Degraded, robust.TimedOut, robust.Crashed, robust.Errors, robust.Retries)
	fmt.Println("Per-pattern breakdown:")
	fmt.Print(breakdown)

	tel := det.Telemetry()
	fmt.Println("\nAggregate telemetry (per-pattern timing and state counts):")
	fmt.Print(tel.Format())
	if *benchOut != "" {
		art := benchArtifact{
			Host:         currentHost(),
			Seed:         *seed,
			Tests:        *tests,
			GenerationMS: genTime.Milliseconds(),
			AnalysisMS:   anaTime.Milliseconds(),
			Table:        table,
			Telemetry:    tel,
		}
		buf, err := json.MarshalIndent(art, "", "  ")
		if err == nil {
			err = os.WriteFile(*benchOut, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote telemetry artifact to %s\n", *benchOut)
	}

	if *ppsBenchOut != "" {
		if err := runPPSBench(cases, *ppsBenchOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *modelAtomics {
		start = time.Now()
		extTable, extBreakdown := uafcheck.RunTableIContext(context.Background(), cases,
			uafcheck.WithAtomicsModel(true))
		fmt.Printf("\nTable I with the atomics extension enabled (%v):\n",
			time.Since(start).Round(time.Millisecond))
		fmt.Print(extTable.Format())
		fmt.Println("\nPer-pattern breakdown (extension):")
		fmt.Print(extBreakdown)
		fmt.Println("\nHandshake-style atomic synchronization is now proven safe;")
		fmt.Println("counting protocols (waitFor(n) with n fills) stay conservatively")
		fmt.Println("flagged because the full/empty abstraction is value-blind (§IV-A).")
	}

	if *countAtomics {
		start = time.Now()
		cntTable, cntBreakdown := uafcheck.RunTableIContext(context.Background(), cases,
			uafcheck.WithAtomicsCounting(true))
		fmt.Printf("\nTable I with the counting refinement enabled (%v):\n",
			time.Since(start).Round(time.Millisecond))
		fmt.Print(cntTable.Format())
		fmt.Println("\nPer-pattern breakdown (counting refinement):")
		fmt.Print(cntBreakdown)
	}

	if *baselines {
		fmt.Println("\nBaseline comparison (§VI):")
		fmt.Print(uafcheck.BaselineComparison(cases, uafcheck.DefaultOptions()))
	}

	if *pruning {
		start = time.Now()
		prep := eval.RunPruningStats(cases, analysis.DefaultOptions())
		fmt.Printf("\nPruning rules A-D over the begin cases (%v):\n",
			time.Since(start).Round(time.Millisecond))
		fmt.Print(prep.Format())
	}

	if *oracle > 0 {
		start = time.Now()
		rep := eval.ValidateWithOracle(cases, 0, *oracle, *seed)
		fmt.Printf("\nDynamic oracle (%d schedules/case, %v):\n", *oracle, time.Since(start).Round(time.Millisecond))
		fmt.Printf("  cases validated:        %d\n", rep.CasesValidated)
		fmt.Printf("  true sites confirmed:   %d/%d\n", rep.ConfirmedTrue, rep.TotalTrue)
		fmt.Printf("  atomic-case false alarms: %d\n", len(rep.FalseAlarms))
	}
	_ = analysis.DefaultOptions // keep import for documentation locality
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
