package main

// The incremental-analysis benchmark behind `make bench-incremental`:
// generate multi-procedure files, then compare the latency of a
// from-scratch AnalyzeContext run against an Analyzer.AnalyzeDelta run
// after each single-procedure edit. Every warm report is checked
// byte-identical (canonical wire encoding) to its cold counterpart; a
// mismatch fails the benchmark, which is how CI smokes the incremental
// engine.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"uafcheck"
	"uafcheck/internal/wire"
)

// incrBenchArtifact is the schema of BENCH_incremental.json.
type incrBenchArtifact struct {
	Schema        string   `json:"schema"`
	Host          hostInfo `json:"host"`
	Seed          int64    `json:"seed"`
	Files         int      `json:"files"`
	ProcsPerFile  int      `json:"procs_per_file"`
	Edits         int      `json:"edits"`
	ColdMSPerEdit float64  `json:"cold_ms_per_edit"`
	WarmMSPerEdit float64  `json:"warm_ms_per_edit"`
	Speedup       float64  `json:"speedup"`
	IdentityOK    bool     `json:"identity_ok"`
	UnitHits      int64    `json:"unit_hits"`
	UnitMisses    int64    `json:"unit_misses"`
	// Module is the cross-file-edit scenario: every generated root calls
	// a shared library procedure, and each edit rewrites that callee
	// effect-preservingly. Graph-scoped invalidation keeps every caller
	// unit hot, so the warm path recomputes one cheap unit where the
	// cold path recomputes the whole module.
	Module incrModuleBench `json:"module_cross_file_edit"`
}

// incrModuleBench is the module-mode (cross-file edit) section of the
// artifact.
type incrModuleBench struct {
	Files         int     `json:"files"`
	ProcsPerFile  int     `json:"procs_per_file"`
	Edits         int     `json:"edits"`
	ColdMSPerEdit float64 `json:"cold_ms_per_edit"`
	WarmMSPerEdit float64 `json:"warm_ms_per_edit"`
	Speedup       float64 `json:"speedup"`
	UnitHits      int64   `json:"unit_hits"`
	UnitMisses    int64   `json:"unit_misses"`
}

const incrBenchSchema = "uafcheck/bench-incremental/v1"

// benchProc generates one top-level procedure named pN: a sync-variable
// fanout whose interleaving space makes the PPS exploration the
// dominant per-procedure cost — the regime the memo store exists for.
// The seed varies task count and values so an edit genuinely changes
// the unit.
func benchProc(i int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	tasks := 5 + rng.Intn(2)
	var sb strings.Builder
	fmt.Fprintf(&sb, "proc p%d() {\n  var x: int = %d;\n", i, rng.Intn(100))
	for t := 0; t < tasks; t++ {
		fmt.Fprintf(&sb, "  var d%d$: sync bool;\n", t)
	}
	for t := 0; t < tasks; t++ {
		fmt.Fprintf(&sb, "  begin with (ref x) {\n    x += %d;\n    d%d$ = true;\n  }\n", rng.Intn(50)+1, t)
	}
	for t := 0; t < tasks; t++ {
		fmt.Fprintf(&sb, "  d%d$;\n", t)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// runIncrBench writes the cold-vs-warm artifact to out and returns an
// error (nonzero exit) if any warm report is not byte-identical to the
// cold one.
func runIncrBench(out string, seed int64, files, procs, edits int) error {
	ctx := context.Background()
	art := incrBenchArtifact{
		Schema: incrBenchSchema, Host: currentHost(), Seed: seed,
		Files: files, ProcsPerFile: procs, Edits: edits,
		IdentityOK: true,
	}

	var coldTotal, warmTotal time.Duration
	totalEdits := 0
	for f := 0; f < files; f++ {
		name := fmt.Sprintf("bench%d.chpl", f)
		cur := make([]string, procs)
		for i := range cur {
			cur[i] = benchProc(i, seed+int64(f*procs+i))
		}
		join := func() string { return strings.Join(cur, "\n") }

		an := uafcheck.NewAnalyzer()
		// Warm-up: populate the memo store with the base version (and the
		// cold path's caches of nothing — AnalyzeContext is stateless).
		if _, err := an.AnalyzeDelta(ctx, name, join()); err != nil {
			return fmt.Errorf("incr-bench: warm-up %s: %w", name, err)
		}

		for e := 0; e < edits; e++ {
			i := (e*7919 + 3) % procs
			cur[i] = benchProc(i, seed+int64(100000+f*1000+e))
			src := join()

			t0 := time.Now()
			coldRep, coldErr := uafcheck.AnalyzeContext(ctx, name, src)
			coldTotal += time.Since(t0)

			t0 = time.Now()
			warmRep, warmErr := an.AnalyzeDelta(ctx, name, src)
			warmTotal += time.Since(t0)
			totalEdits++

			coldBytes, err := wire.NewResult(name, coldRep, coldErr, false).Encode()
			if err != nil {
				return fmt.Errorf("incr-bench: encode cold: %w", err)
			}
			warmBytes, err := wire.NewResult(name, warmRep, warmErr, false).Encode()
			if err != nil {
				return fmt.Errorf("incr-bench: encode warm: %w", err)
			}
			if string(coldBytes) != string(warmBytes) {
				art.IdentityOK = false
				fmt.Fprintf(os.Stderr, "incr-bench: IDENTITY FAILURE %s edit %d\n cold: %s\n warm: %s\n",
					name, e, coldBytes, warmBytes)
			}
		}
		st := an.Stats()
		art.UnitHits += st.UnitHits
		art.UnitMisses += st.UnitMisses
	}

	art.ColdMSPerEdit = float64(coldTotal.Microseconds()) / 1000 / float64(totalEdits)
	art.WarmMSPerEdit = float64(warmTotal.Microseconds()) / 1000 / float64(totalEdits)
	if art.WarmMSPerEdit > 0 {
		art.Speedup = art.ColdMSPerEdit / art.WarmMSPerEdit
	}

	if err := runModuleEditBench(ctx, &art, seed, files, procs, edits); err != nil {
		return err
	}

	buf, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("incremental benchmark: %d files x %d procs, %d edits: cold %.2f ms/edit, warm %.2f ms/edit (%.1fx), identity_ok=%t\n",
		files, procs, edits, art.ColdMSPerEdit, art.WarmMSPerEdit, art.Speedup, art.IdentityOK)
	fmt.Printf("cross-file-edit benchmark: %d caller files x %d procs + 1 library, %d callee edits: cold %.2f ms/edit, warm %.2f ms/edit (%.1fx)\n",
		art.Module.Files, art.Module.ProcsPerFile, art.Module.Edits,
		art.Module.ColdMSPerEdit, art.Module.WarmMSPerEdit, art.Module.Speedup)
	fmt.Printf("wrote incremental benchmark artifact to %s\n", out)
	if !art.IdentityOK {
		return fmt.Errorf("incr-bench: warm reports are not byte-identical to cold reports")
	}
	return nil
}

// benchCallerProc is benchProc plus a cross-file call: the procedure
// depends on the shared library callee, so its memo unit carries the
// callee's summary fingerprint.
func benchCallerProc(i int, seed int64) string {
	src := benchProc(i, seed)
	return strings.Replace(src, "}\n", "  libHelper(x);\n}\n", 1)
}

// runModuleEditBench measures the cross-file-edit scenario: a module of
// `files` expensive caller files sharing one cheap library callee.
// Every edit rewrites the callee without changing its boundary summary,
// so AnalyzeModuleDelta recomputes exactly one unit while the cold run
// recomputes files*procs of them. Fails on any byte divergence from the
// cold run.
func runModuleEditBench(ctx context.Context, art *incrBenchArtifact, seed int64, files, procs, edits int) error {
	helper := func(k int) string {
		return fmt.Sprintf("proc libHelper(ref v: int) {\n  begin with (ref v) {\n    v = v + %d;\n  }\n}\n", k)
	}
	mfiles := []uafcheck.ModuleFile{{Name: "lib.chpl", Src: helper(1)}}
	for f := 0; f < files; f++ {
		var sb strings.Builder
		for i := 0; i < procs; i++ {
			sb.WriteString(benchCallerProc(f*procs+i, seed+int64(500000+f*1000+i)))
			sb.WriteString("\n")
		}
		mfiles = append(mfiles, uafcheck.ModuleFile{Name: fmt.Sprintf("mod%d.chpl", f), Src: sb.String()})
	}
	art.Module = incrModuleBench{Files: files, ProcsPerFile: procs, Edits: edits}

	an := uafcheck.NewAnalyzer()
	if _, err := an.AnalyzeModuleDelta(ctx, mfiles); err != nil {
		return fmt.Errorf("incr-bench: module warm-up: %w", err)
	}

	var coldTotal, warmTotal time.Duration
	for e := 0; e < edits; e++ {
		mfiles[0].Src = helper(2 + e)

		t0 := time.Now()
		coldRep, coldErr := uafcheck.AnalyzeModuleContext(ctx, mfiles)
		coldTotal += time.Since(t0)

		t0 = time.Now()
		warmRep, warmErr := an.AnalyzeModuleDelta(ctx, mfiles)
		warmTotal += time.Since(t0)

		if coldErr != nil || warmErr != nil {
			return fmt.Errorf("incr-bench: module edit %d: cold=%v warm=%v", e, coldErr, warmErr)
		}
		for i := range coldRep.Files {
			cb, err := wire.NewResult(coldRep.Files[i].Name, coldRep.Files[i].Report, coldRep.Files[i].Err, false).Encode()
			if err != nil {
				return fmt.Errorf("incr-bench: encode module cold: %w", err)
			}
			wb, err := wire.NewResult(warmRep.Files[i].Name, warmRep.Files[i].Report, warmRep.Files[i].Err, false).Encode()
			if err != nil {
				return fmt.Errorf("incr-bench: encode module warm: %w", err)
			}
			if string(cb) != string(wb) {
				art.IdentityOK = false
				fmt.Fprintf(os.Stderr, "incr-bench: MODULE IDENTITY FAILURE edit %d file %s\n cold: %s\n warm: %s\n",
					e, coldRep.Files[i].Name, cb, wb)
			}
		}
	}

	st := an.Stats()
	art.Module.UnitHits = st.UnitHits
	art.Module.UnitMisses = st.UnitMisses
	art.Module.ColdMSPerEdit = float64(coldTotal.Microseconds()) / 1000 / float64(edits)
	art.Module.WarmMSPerEdit = float64(warmTotal.Microseconds()) / 1000 / float64(edits)
	if art.Module.WarmMSPerEdit > 0 {
		art.Module.Speedup = art.Module.ColdMSPerEdit / art.Module.WarmMSPerEdit
	}
	return nil
}
