// Command uafserve runs the use-after-free analysis as a long-lived
// HTTP/JSON daemon: clients POST MiniChapel source and get back the
// same canonical report JSON that `uafcheck -format=json` prints.
//
// Usage:
//
//	uafserve [flags]
//
// Flags:
//
//	-addr A          listen address (default :8420; use 127.0.0.1:0
//	                 for an ephemeral port — the bound address is
//	                 printed on startup)
//	-inflight N      max concurrently running analyses (0 = GOMAXPROCS)
//	-queue N         max requests waiting for a slot before 429 (default 64)
//	-deadline D      default per-request analysis deadline (default 30s)
//	-max-deadline D  cap on client-requested deadlines (default 2m)
//	-par N           PPS exploration workers per analysis (default 1)
//	-jobs N          file workers per batch request (0 = GOMAXPROCS)
//	-cache-dir D     persist the content-addressed report cache under D
//	-cache-size N    in-memory report cache entries (0 = default)
//	-max-body N      max request body bytes (default 8 MiB)
//	-flight-size N   request digests kept for /debug/requests (default 256)
//	-pprof           mount net/http/pprof under /debug/pprof/
//	-faults SPEC     arm deterministic fault injection for chaos drills
//	                 (point=mode:prob rules; see internal/fault)
//	-fault-seed N    seed for the -faults probability streams (default 1)
//
// Cluster flags (see docs/CLUSTER.md):
//
//	-mode M            "single" (default), "worker", or "coordinator"
//	-workers LIST      coordinator: comma-separated worker base URLs,
//	                   optionally as id=url pairs (IDs default to
//	                   worker-0, worker-1, ... by position; the routing
//	                   ring hashes IDs, so keep them stable across
//	                   restarts)
//	-cache-peers LIST  worker: comma-separated peer base URLs; local
//	                   report-cache misses fall through to the peers'
//	                   /v1/cache endpoints, so a cold replica warms from
//	                   the fleet instead of recomputing
//	-probe-interval D  coordinator: worker health probe cadence
//	                   (default 2s); a worker failing its probe leaves
//	                   the ring until it recovers
//
// With -cache-dir, startup runs a crash-recovery scan over the disk
// tier: entries whose checksum no longer matches are quarantined and
// stale temp files from interrupted writes are swept, so a kill -9
// mid-write can never surface a corrupt report later.
//
// Endpoints:
//
//	POST /v1/analyze        {"name","src","options":{...}} -> canonical
//	                        result JSON; 429 + Retry-After on overload
//	POST /v1/analyze-batch  {"files":[{"name","src"},...],"options":{...}}
//	                        -> NDJSON, one result line per file as each
//	                        finishes
//	POST /v1/delta          NDJSON stream of {"name","src","options":{...}}
//	                        lines -> NDJSON result lines; files re-sent
//	                        after an edit are re-analyzed incrementally
//	                        (only edited procedures recompute)
//	POST /v1/repair         {"name","src","options":{...}} -> NDJSON:
//	                        one verified unified-diff patch per line
//	                        plus a terminal summary; analyses that
//	                        degrade answer a typed 503 refusal
//	                        (code "repair_degraded") with Retry-After
//	                        instead of an unverifiable patch
//	GET  /healthz           readiness (503 while draining)
//	GET  /livez             liveness
//	GET  /metrics           Prometheus text format (per-route latency
//	                        histograms included)
//	GET  /statusz           operational summary with p50/p90/p99 per route
//	GET  /debug/requests    flight recorder: recent request digests;
//	                        ?trace=<id> returns one with its span tree
//	GET  /debug/pprof/      net/http/pprof (only with -pprof)
//
// Analysis endpoints accept and echo a W3C `traceparent` header; each
// request's span tree (server -> analysis phases -> PPS waves) is
// retrievable from /debug/requests by trace ID.
//
// /v1/analyze and /v1/analyze-batch content-negotiate: requests with
// `Accept: application/sarif+json` (or `?format=sarif`) receive the
// SARIF 2.1.0 projection, with verified repair patches embedded as
// SARIF fixes — ready for code-scanning upload; see docs/REPAIR.md.
//
// The pre-versioning routes /analyze and /analyze-batch still answer —
// with Deprecation/Link/Sunset headers and a server.deprecated_requests
// count — but new clients should use /v1/. See docs/SERVER.md for the
// compatibility and removal policy.
//
// SIGINT/SIGTERM shut down gracefully: the admission gate closes,
// in-flight analyses finish and are delivered, and the disk cache tier
// is flushed before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"uafcheck"
	"uafcheck/internal/client"
	"uafcheck/internal/cluster"
	"uafcheck/internal/fault"
	"uafcheck/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8420", "listen address (host:port; port 0 picks an ephemeral port)")
		inflight    = flag.Int("inflight", 0, "max concurrently running analyses (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 64, "max requests waiting for an analysis slot before 429 (negative = no queue)")
		deadline    = flag.Duration("deadline", 30*time.Second, "default per-request analysis deadline; on expiry the analysis degrades to conservative warnings")
		maxDeadline = flag.Duration("max-deadline", 2*time.Minute, "cap on client-requested deadlines")
		par         = flag.Int("par", 0, "parallel PPS exploration workers per analysis (0 = 1)")
		jobs        = flag.Int("jobs", 0, "parallel file workers per batch request (0 = GOMAXPROCS)")
		cacheDir    = flag.String("cache-dir", "", "directory for the persistent content-addressed report cache (empty = memory only)")
		cacheSize   = flag.Int("cache-size", 0, "in-memory report cache entries (0 = default)")
		maxBody     = flag.Int64("max-body", 0, "max request body bytes (0 = 8 MiB)")
		drainFor    = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight analyses on shutdown")
		flightSize  = flag.Int("flight-size", 0, "request digests kept for GET /debug/requests (0 = 256)")
		enablePprof = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		faults      = flag.String("faults", "", "fault-injection spec for chaos drills, e.g. 'cache.fs.write=err:0.1;analysis.panic=panic:0.01' (see internal/fault)")
		faultSeed   = flag.Int64("fault-seed", 1, "deterministic seed for -faults probability streams")
		mode        = flag.String("mode", "single", "process role: single, worker, or coordinator")
		workers     = flag.String("workers", "", "coordinator: comma-separated worker base URLs (optionally id=url pairs)")
		cachePeers  = flag.String("cache-peers", "", "worker: comma-separated peer base URLs to warm the report cache from")
		probeEvery  = flag.Duration("probe-interval", 2*time.Second, "coordinator: worker health probe interval")
	)
	flag.Parse()

	switch *mode {
	case "single", "worker", "coordinator":
	default:
		fmt.Fprintf(os.Stderr, "uafserve: -mode must be single, worker or coordinator (got %q)\n", *mode)
		os.Exit(2)
	}

	if *faults != "" {
		in, err := fault.Parse(*faultSeed, *faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uafserve: -faults: %v\n", err)
			os.Exit(2)
		}
		fault.Set(in)
		fmt.Fprintf(os.Stderr, "uafserve: fault injection armed (seed %d): %s\n", *faultSeed, *faults)
	}

	if *mode == "coordinator" {
		runCoordinator(*addr, *workers, *probeEvery, *drainFor)
		return
	}

	// The daemon always runs a report cache: repeated sources across
	// requests are the common case for a shared service. Disk writes go
	// through the async tier so cache persistence never sits on a
	// request's latency path; Shutdown flushes it.
	cacheCfg := uafcheck.CacheConfig{MaxEntries: *cacheSize, Dir: *cacheDir}
	var peerBackend uafcheck.CacheBackend
	if *cacheDir != "" {
		cacheCfg.AsyncDiskWrites = 256
		// The peer endpoint always serves the local tier only — serving
		// the tiered chain would turn one peer's miss into a fan-out.
		local := uafcheck.NewDirCacheBackend(*cacheDir)
		peerBackend = local
		cacheCfg.Backend = local
		if *cachePeers != "" {
			remote := cluster.NewRemoteBackend(splitList(*cachePeers),
				client.New(client.Config{MaxAttempts: 2, Budget: 10 * time.Second, NoStatusRetry: true}))
			cacheCfg.Backend = uafcheck.NewTieredCacheBackend(local, remote)
			fmt.Fprintf(os.Stderr, "uafserve: cache warms from peers: %s\n", *cachePeers)
		}
	}
	reportCache := uafcheck.NewCache(cacheCfg)
	if *cacheDir != "" {
		// A previous process may have died mid-write: sweep stale temp
		// files and quarantine entries whose checksum no longer matches
		// before serving anything from disk.
		rs := reportCache.Recover()
		fmt.Fprintf(os.Stderr, "uafserve: cache recovery: %d scanned, %d ok, %d quarantined, %d temp file(s) swept\n",
			rs.Scanned, rs.OK, rs.Quarantined, rs.TempFiles)
	}

	srv := server.New(server.Config{
		MaxInflight:        *inflight,
		QueueDepth:         *queue,
		DefaultDeadline:    *deadline,
		MaxDeadline:        *maxDeadline,
		Parallelism:        *par,
		BatchWorkers:       *jobs,
		MaxBodyBytes:       *maxBody,
		Cache:              reportCache,
		FlightRecorderSize: *flightSize,
		EnablePprof:        *enablePprof,
		Mode:               *mode,
		CachePeer:          peerBackend,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uafserve: %v\n", err)
		os.Exit(1)
	}
	// The bound address line is machine-readable on purpose: with
	// -addr 127.0.0.1:0 it is how callers (and the loadtest harness)
	// learn the ephemeral port.
	fmt.Printf("uafserve: listening on %s\n", ln.Addr())

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "uafserve: %v: draining (up to %v)\n", sig, *drainFor)
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "uafserve: %v\n", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	// Order matters: the analysis server drains first (gate closes,
	// queued waiters get 503, admitted requests run to completion and
	// write their responses), then the HTTP layer closes idle
	// connections. The cache flush happens inside srv.Shutdown.
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "uafserve: drain incomplete: %v\n", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "uafserve: %v\n", err)
	}
	m := srv.MetricsSnapshot()
	fmt.Fprintf(os.Stderr, "uafserve: served %d requests (%d analyses, %d delta files, %d dedup hits, %d rejects, %d deprecated-route hits)\n",
		m.Counter("server.requests"), m.Counter("server.analyses"),
		m.Counter("server.delta_files"), m.Counter("server.dedup_hits"),
		m.Counter("server.rejects"), m.Counter("server.deprecated_requests"))
}

// splitList parses a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseWorkers turns the -workers flag into worker specs. Entries are
// base URLs, optionally prefixed "id=": bare URLs get positional IDs
// (worker-0, worker-1, ...). The ring hashes IDs, so a fleet restarted
// on fresh ports but the same IDs routes identically.
func parseWorkers(list string) ([]cluster.WorkerSpec, error) {
	var specs []cluster.WorkerSpec
	seen := make(map[string]bool)
	for i, entry := range splitList(list) {
		id, url := fmt.Sprintf("worker-%d", i), entry
		if at := strings.Index(entry, "="); at > 0 && !strings.Contains(entry[:at], "/") {
			id, url = entry[:at], entry[at+1:]
		}
		if seen[id] {
			return nil, fmt.Errorf("duplicate worker id %q", id)
		}
		seen[id] = true
		if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
			url = "http://" + url
		}
		specs = append(specs, cluster.WorkerSpec{ID: id, URL: strings.TrimRight(url, "/")})
	}
	return specs, nil
}

// runCoordinator is the -mode coordinator main loop: no analysis
// engine, no local cache — just the routing edge over the worker
// fleet, with the same listen/announce/drain lifecycle as a worker so
// harnesses drive both identically.
func runCoordinator(addr, workers string, probeEvery, drainFor time.Duration) {
	specs, err := parseWorkers(workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uafserve: -workers: %v\n", err)
		os.Exit(2)
	}
	if len(specs) == 0 {
		fmt.Fprintln(os.Stderr, "uafserve: -mode coordinator requires -workers")
		os.Exit(2)
	}

	coord := cluster.New(cluster.Config{
		Workers:       specs,
		ProbeInterval: probeEvery,
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uafserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("uafserve: listening on %s\n", ln.Addr())
	fmt.Fprintf(os.Stderr, "uafserve: coordinator over %d worker(s)\n", len(specs))

	httpSrv := &http.Server{
		Handler:           coord.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "uafserve: %v: draining (up to %v)\n", sig, drainFor)
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "uafserve: %v\n", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainFor)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "uafserve: %v\n", err)
	}
	if err := coord.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "uafserve: %v\n", err)
	}
}
