// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations for the design choices called out in
// DESIGN.md (PPS merging §III-C, pruning rules A-D §III-A) and substrate
// throughput baselines.
//
// Run all:
//
//	go test -bench=. -benchmem
package uafcheck_test

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"

	"uafcheck"
	"uafcheck/internal/analysis"
	"uafcheck/internal/ccfg"
	"uafcheck/internal/corpus"
	"uafcheck/internal/eval"
	"uafcheck/internal/ir"
	"uafcheck/internal/obs"
	"uafcheck/internal/parser"
	"uafcheck/internal/pps"
	"uafcheck/internal/pst"
	"uafcheck/internal/repair"
	"uafcheck/internal/runtime"
	"uafcheck/internal/source"
	"uafcheck/internal/sym"
)

func mustRead(b *testing.B, path string) string {
	b.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		b.Fatal(err)
	}
	return string(data)
}

func mustFrontend(b *testing.B, name, src string) (*sym.Info, *source.Diagnostics) {
	b.Helper()
	diags := &source.Diagnostics{}
	mod := parser.ParseSource(name, src, diags)
	if diags.HasErrors() {
		b.Fatalf("frontend:\n%s", diags)
	}
	info := sym.Resolve(mod, diags)
	if diags.HasErrors() {
		b.Fatalf("resolve:\n%s", diags)
	}
	return info, diags
}

// ---------------------------------------------------------------- Fig 1

// BenchmarkFigure1Analyze runs the complete pass (parse → resolve →
// lower → CCFG → prune → PPS → warnings) on the paper's Figure 1.
func BenchmarkFigure1Analyze(b *testing.B) {
	src := mustRead(b, "testdata/figure1.chpl")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := uafcheck.Analyze("figure1.chpl", src)
		if err != nil || len(rep.Warnings) != 1 {
			b.Fatalf("warnings=%d err=%v", len(rep.Warnings), err)
		}
	}
}

// ---------------------------------------------------------------- Fig 2

// BenchmarkFigure2CCFGConstruction isolates lowering + CCFG construction
// + pruning + frontier computation for Figure 1 (the paper's Figure 2
// artifact).
func BenchmarkFigure2CCFGConstruction(b *testing.B) {
	src := mustRead(b, "testdata/figure1.chpl")
	info, _ := mustFrontend(b, "figure1.chpl", src)
	proc := info.Module.Proc("outerVarUse")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diags := &source.Diagnostics{}
		prog := ir.Lower(info, proc, diags)
		g := ccfg.Build(prog, diags, ccfg.DefaultBuildOptions())
		if len(g.Nodes) == 0 {
			b.Fatal("empty graph")
		}
	}
}

// ------------------------------------------------------------- Fig 3/7

// BenchmarkFigure3PPSExploration isolates the PPS exploration on the
// prebuilt Figure 1 CCFG (the paper's Figure 3 table).
func BenchmarkFigure3PPSExploration(b *testing.B) {
	benchExplore(b, "testdata/figure1.chpl", "outerVarUse", 1)
}

// BenchmarkFigure7BranchingPPS explores the Figure 6 program, whose
// branches fork the initial PPS set (the paper's Figure 7 table).
func BenchmarkFigure7BranchingPPS(b *testing.B) {
	benchExplore(b, "testdata/figure6.chpl", "multipleUse", 1)
}

func benchExplore(b *testing.B, path, procName string, wantUnsafe int) {
	src := mustRead(b, path)
	info, _ := mustFrontend(b, path, src)
	proc := info.Module.Proc(procName)
	diags := &source.Diagnostics{}
	prog := ir.Lower(info, proc, diags)
	g := ccfg.Build(prog, diags, ccfg.DefaultBuildOptions())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := pps.Explore(g, pps.Options{})
		if len(r.Unsafe) != wantUnsafe {
			b.Fatalf("unsafe=%d want %d", len(r.Unsafe), wantUnsafe)
		}
	}
}

// --------------------------------------------------------------- Table I

// BenchmarkTableICorpus runs the entire §V evaluation: generate the
// 5127-program synthetic suite and analyze every program. One iteration
// is one full Table I reproduction.
func BenchmarkTableICorpus(b *testing.B) {
	cases := corpus.Generate(corpus.DefaultParams(1711))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, _ := eval.RunTableI(cases, analysis.DefaultOptions())
		if table.TruePositives != 63 || table.WarningsReported != 437 {
			b.Fatalf("table drifted: %+v", table)
		}
	}
}

// BenchmarkTableICorpusParallel runs the same evaluation with a worker
// pool — one goroutine per core; test programs are independent.
func BenchmarkTableICorpusParallel(b *testing.B) {
	cases := corpus.Generate(corpus.DefaultParams(1711))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, _ := eval.RunTableIParallel(cases, analysis.DefaultOptions(), 0)
		if table.TruePositives != 63 {
			b.Fatalf("table drifted: %+v", table)
		}
	}
}

// BenchmarkScheduleExplorers compares the three oracle drivers on
// Figure 1: random sampling, preemption-bounded, exhaustive (budgeted).
func BenchmarkScheduleExplorers(b *testing.B) {
	src := mustRead(b, "testdata/figure1.chpl")
	info, _ := mustFrontend(b, "figure1.chpl", src)
	mod := info.Module
	b.Run("random-100", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runtime.ExploreRandom(mod, info, "outerVarUse", 100, int64(i))
		}
	})
	b.Run("bounded-2", func(b *testing.B) {
		var runs int
		for i := 0; i < b.N; i++ {
			er := runtime.ExploreBounded(mod, info, "outerVarUse", 5000, 2)
			if len(er.UAF) == 0 {
				b.Fatal("bounded missed the bug")
			}
			runs = er.Runs
		}
		b.ReportMetric(float64(runs), "runs/op")
	})
	b.Run("exhaustive-5000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runtime.ExploreExhaustive(mod, info, "outerVarUse", 5000)
		}
	})
}

// BenchmarkTableICorpusGeneration isolates suite generation.
func BenchmarkTableICorpusGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cases := corpus.Generate(corpus.DefaultParams(1711))
		if len(cases) != 5127 {
			b.Fatal("wrong corpus size")
		}
	}
}

// ------------------------------------------------------------- ablations

// syntheticFanout builds a proc with n sync-chained tasks and m branch
// diamonds — the knob for state-space ablations.
func syntheticFanout(tasks, branches int) string {
	var sb strings.Builder
	sb.WriteString("config const flag = true;\nproc fan() {\n  var x: int = 1;\n")
	for i := 0; i < tasks; i++ {
		fmt.Fprintf(&sb, "  var d%d$: sync bool;\n", i)
	}
	for i := 0; i < tasks; i++ {
		fmt.Fprintf(&sb, "  begin with (ref x) {\n    x += %d;\n    d%d$ = true;\n  }\n", i+1, i)
	}
	for i := 0; i < branches; i++ {
		fmt.Fprintf(&sb, "  if (flag) { writeln(%d); } else { writeln(0); }\n", i)
	}
	for i := 0; i < tasks; i++ {
		fmt.Fprintf(&sb, "  d%d$;\n", i)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// BenchmarkExploreSeq and BenchmarkExplorePar compare the wave explorer
// at Parallelism 1 and 4 on a wide synthetic fanout whose frontiers are
// broad enough to cross the parallel threshold. The states/op metric
// must be identical between the two: the exploration is deterministic
// by construction regardless of worker count.
func BenchmarkExploreSeq(b *testing.B) { benchExploreWorkers(b, 1) }

func BenchmarkExplorePar(b *testing.B) { benchExploreWorkers(b, 4) }

func benchExploreWorkers(b *testing.B, par int) {
	src := syntheticFanout(6, 2)
	info, _ := mustFrontend(b, "fan.chpl", src)
	proc := info.Module.Proc("fan")
	diags := &source.Diagnostics{}
	prog := ir.Lower(info, proc, diags)
	g := ccfg.Build(prog, diags, ccfg.DefaultBuildOptions())
	b.ReportAllocs()
	b.ResetTimer()
	var states int
	for i := 0; i < b.N; i++ {
		r := pps.Explore(g, pps.Options{Parallelism: par})
		states = r.Stats.StatesProcessed
	}
	b.ReportMetric(float64(states), "states/op")
}

// BenchmarkAnalyzeCached measures the content-addressed cache's hit
// path against the full pipeline (the miss that populates it happens
// outside the timer).
func BenchmarkAnalyzeCached(b *testing.B) {
	src := mustRead(b, "testdata/figure1.chpl")
	opts := uafcheck.DefaultOptions()
	opts.Cache = uafcheck.NewCache(uafcheck.CacheConfig{})
	if _, err := uafcheck.AnalyzeWithOptions("figure1.chpl", src, opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := uafcheck.AnalyzeWithOptions("figure1.chpl", src, opts)
		if err != nil || len(rep.Warnings) != 1 {
			b.Fatalf("warnings=%d err=%v", len(rep.Warnings), err)
		}
	}
}

// BenchmarkPPSMerge quantifies the §III-C merge optimization: identical
// (ASN, state-table) states are folded. Without it the same program
// explores many times more states.
func BenchmarkPPSMerge(b *testing.B) {
	src := syntheticFanout(4, 2)
	info, _ := mustFrontend(b, "fan.chpl", src)
	proc := info.Module.Proc("fan")
	diags := &source.Diagnostics{}
	prog := ir.Lower(info, proc, diags)
	g := ccfg.Build(prog, diags, ccfg.DefaultBuildOptions())
	for _, merge := range []bool{true, false} {
		name := "on"
		if !merge {
			name = "off"
		}
		b.Run("merge="+name, func(b *testing.B) {
			b.ReportAllocs()
			var states int
			for i := 0; i < b.N; i++ {
				r := pps.Explore(g, pps.Options{DisableMerge: !merge})
				states = r.Stats.StatesProcessed
			}
			b.ReportMetric(float64(states), "states/op")
		})
	}
}

// BenchmarkPruning quantifies rules A-D on a corpus slice dominated by
// safe tasks: pruning removes whole strands before exploration.
func BenchmarkPruning(b *testing.B) {
	params := corpus.Params{Seed: 5, Tests: 64, BeginTests: 64,
		UnsafeTests: 4, TrueSites: 12, AtomicFPTests: 4, FalseSites: 16}
	cases := corpus.Generate(params)
	for _, prune := range []bool{true, false} {
		name := "on"
		if !prune {
			name = "off"
		}
		b.Run("prune="+name, func(b *testing.B) {
			opts := analysis.DefaultOptions()
			opts.Prune = prune
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for j := range cases {
					analysis.AnalyzeSource(cases[j].Name, cases[j].Source, opts)
				}
			}
		})
	}
}

// ------------------------------------------------------------- baselines

// BenchmarkBaselineComparison runs the §VI baseline comparison over the
// corpus's begin cases.
func BenchmarkBaselineComparison(b *testing.B) {
	params := corpus.Params{Seed: 9, Tests: 128, BeginTests: 64,
		UnsafeTests: 6, TrueSites: 18, AtomicFPTests: 6, FalseSites: 24}
	cases := corpus.Generate(params)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := eval.RunBaselines(cases, analysis.DefaultOptions())
		if rep.ClearedByPPS <= 0 {
			b.Fatal("baseline comparison degenerate")
		}
	}
}

// ------------------------------------------------------------ extensions

// BenchmarkAtomicsExtension measures the Table I run under each atomics
// mode; the guard assertions double as the experiment's regression test
// (warnings 437 → 250 → 63).
func BenchmarkAtomicsExtension(b *testing.B) {
	cases := corpus.Generate(corpus.DefaultParams(1711))
	for _, mode := range []struct {
		name  string
		opts  analysis.Options
		wantW int
	}{
		{"default", analysis.Options{Prune: true}, 437},
		{"model", analysis.Options{Prune: true, ModelAtomics: true}, 250},
		{"count", analysis.Options{Prune: true, ModelAtomics: true, CountAtomics: true}, 63},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				table, _ := eval.RunTableI(cases, mode.opts)
				if table.WarningsReported != mode.wantW {
					b.Fatalf("warnings = %d, want %d", table.WarningsReported, mode.wantW)
				}
			}
		})
	}
}

// BenchmarkRepairFigure1 measures the full synthesize-and-verify repair
// loop (static re-analysis + bounded dynamic schedule exploration).
func BenchmarkRepairFigure1(b *testing.B) {
	src := mustRead(b, "testdata/figure1.chpl")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := repair.Repair("figure1.chpl", src, analysis.DefaultOptions())
		if err != nil || !res.Clean() {
			b.Fatalf("repair failed: %v / %+v", err, res)
		}
	}
}

// BenchmarkPSTBaseline measures the §VI Program Structure Tree MHP check
// on Figure 1 — the tree-based alternative the paper argues against.
func BenchmarkPSTBaseline(b *testing.B) {
	src := mustRead(b, "testdata/figure1.chpl")
	info, _ := mustFrontend(b, "figure1.chpl", src)
	proc := info.Module.Proc("outerVarUse")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := pst.Build(info, proc)
		if len(tree.CheckUAF()) == 0 {
			b.Fatal("PST flagged nothing")
		}
	}
}

// ------------------------------------------------------------ substrates

// BenchmarkParserThroughput measures frontend bytes/sec over the
// concatenated corpus sources.
func BenchmarkParserThroughput(b *testing.B) {
	cases := corpus.Generate(corpus.Params{Seed: 3, Tests: 256, BeginTests: 32,
		UnsafeTests: 4, TrueSites: 8, AtomicFPTests: 4, FalseSites: 16})
	var total int64
	for i := range cases {
		total += int64(len(cases[i].Source))
	}
	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range cases {
			diags := &source.Diagnostics{}
			parser.ParseSource(cases[j].Name, cases[j].Source, diags)
			if diags.HasErrors() {
				b.Fatal("parse error")
			}
		}
	}
}

// BenchmarkInterpreterSchedule measures one random-schedule execution of
// the Figure 1 program on the task runtime.
func BenchmarkInterpreterSchedule(b *testing.B) {
	src := mustRead(b, "testdata/figure1.chpl")
	info, _ := mustFrontend(b, "figure1.chpl", src)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := runtime.Run(info.Module, info, runtime.Config{
			Entry:  "outerVarUse",
			Policy: runtime.NewRandomPolicy(int64(i)),
		})
		if r.Steps == 0 {
			b.Fatal("no steps")
		}
	}
}

// BenchmarkRaceDetection measures the vector-clock detector's overhead
// on one random schedule of Figure 1.
func BenchmarkRaceDetection(b *testing.B) {
	src := mustRead(b, "testdata/figure1.chpl")
	info, _ := mustFrontend(b, "figure1.chpl", src)
	for _, detect := range []bool{false, true} {
		name := "off"
		if detect {
			name = "on"
		}
		b.Run("races="+name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runtime.Run(info.Module, info, runtime.Config{
					Entry:       "outerVarUse",
					DetectRaces: detect,
					Policy:      runtime.NewRandomPolicy(int64(i)),
				})
			}
		})
	}
}

// ----------------------------------------------------------- telemetry

// BenchmarkObsOverhead measures the telemetry tax on the full pass:
// no sinks (Report.Metrics still populated), a text sink, and a JSONL
// trace sink. The hot PPS loop accumulates into plain integers and
// flushes once per phase, so the spread should be flush-sized, not
// per-state.
func BenchmarkObsOverhead(b *testing.B) {
	src := mustRead(b, "testdata/figure1.chpl")
	sinks := []struct {
		name string
		mk   func() []uafcheck.MetricsSink
	}{
		{"nil-sink", func() []uafcheck.MetricsSink { return nil }},
		{"text-sink", func() []uafcheck.MetricsSink {
			return []uafcheck.MetricsSink{uafcheck.TextMetricsSink(io.Discard)}
		}},
		{"jsonl-sink", func() []uafcheck.MetricsSink {
			return []uafcheck.MetricsSink{uafcheck.JSONLinesMetricsSink(io.Discard)}
		}},
	}
	for _, s := range sinks {
		b.Run(s.name, func(b *testing.B) {
			opts := uafcheck.DefaultOptions()
			opts.MetricsSinks = s.mk()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := uafcheck.AnalyzeWithOptions("figure1.chpl", src, opts)
				if err != nil || len(rep.Warnings) != 1 {
					b.Fatalf("warnings=%d err=%v", len(rep.Warnings), err)
				}
			}
		})
	}
}

// BenchmarkTracingOverhead pins the cost of span recording on the whole
// pipeline: the same analysis with tracing off, with a report-owned
// trace, and attached to an ambient caller trace (the server shape).
// The warning output is identical in all three; only the span tree and
// wall-clock histograms are added.
func BenchmarkTracingOverhead(b *testing.B) {
	src := mustRead(b, "testdata/figure1.chpl")
	run := func(b *testing.B, opts ...uafcheck.Option) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := uafcheck.AnalyzeContext(context.Background(), "figure1.chpl", src, opts...)
			if err != nil || len(rep.Warnings) != 1 {
				b.Fatalf("warnings=%d err=%v", len(rep.Warnings), err)
			}
		}
	}
	b.Run("tracing=off", func(b *testing.B) { run(b) })
	b.Run("tracing=on", func(b *testing.B) { run(b, uafcheck.WithTracing(true)) })
	b.Run("tracing=ambient", func(b *testing.B) {
		tr := obs.NewTrace(obs.DeriveTraceID("bench"))
		ctx := obs.ContextWithTrace(context.Background(), tr)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rep, err := uafcheck.AnalyzeContext(ctx, "figure1.chpl", src, uafcheck.WithTracing(true))
			if err != nil || len(rep.Warnings) != 1 {
				b.Fatalf("warnings=%d err=%v", len(rep.Warnings), err)
			}
		}
	})
}

// BenchmarkExploreObs isolates the recorder's cost on the raw PPS loop:
// nil recorder vs an attached one, same prebuilt graph.
func BenchmarkExploreObs(b *testing.B) {
	src := mustRead(b, "testdata/figure6.chpl")
	info, _ := mustFrontend(b, "figure6.chpl", src)
	proc := info.Module.Proc("multipleUse")
	diags := &source.Diagnostics{}
	prog := ir.Lower(info, proc, diags)
	g := ccfg.Build(prog, diags, ccfg.DefaultBuildOptions())
	b.Run("obs=nil", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pps.Explore(g, pps.Options{})
		}
	})
	b.Run("obs=recorder", func(b *testing.B) {
		rec := obs.New()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pps.Explore(g, pps.Options{Obs: rec})
		}
	})
}

// BenchmarkScalingTasks charts PPS state growth against the number of
// concurrently live sync-chained tasks — the exponential heart of the
// approach that pruning and merging exist to tame.
func BenchmarkScalingTasks(b *testing.B) {
	for _, n := range []int{2, 4, 6, 8} {
		b.Run(fmt.Sprintf("tasks=%d", n), func(b *testing.B) {
			src := syntheticFanout(n, 0)
			info, _ := mustFrontend(b, "fan.chpl", src)
			proc := info.Module.Proc("fan")
			diags := &source.Diagnostics{}
			prog := ir.Lower(info, proc, diags)
			g := ccfg.Build(prog, diags, ccfg.DefaultBuildOptions())
			b.ReportAllocs()
			b.ResetTimer()
			var states int
			for i := 0; i < b.N; i++ {
				r := pps.Explore(g, pps.Options{})
				states = r.Stats.StatesProcessed
			}
			b.ReportMetric(float64(states), "states/op")
		})
	}
}
